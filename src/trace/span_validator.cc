#include "trace/span_validator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/provenance.h"

namespace traceweaver {
namespace {

/// True if any replica index is outside [0, max_replica].
bool ReplicasOutOfRange(const Span& s, int max_replica) {
  return s.caller_replica < 0 || s.caller_replica > max_replica ||
         s.callee_replica < 0 || s.callee_replica > max_replica;
}

bool NamesEmpty(const Span& s) {
  return s.caller.empty() || s.callee.empty() || s.endpoint.empty();
}

/// True if two records describe the same captured RPC (every wire and
/// ground-truth field equal) -- i.e. a duplicated record, not an id
/// collision between distinct spans.
bool SameRecord(const Span& a, const Span& b) {
  return a.id == b.id && a.caller == b.caller && a.callee == b.callee &&
         a.endpoint == b.endpoint && a.client_send == b.client_send &&
         a.server_recv == b.server_recv && a.server_send == b.server_send &&
         a.client_recv == b.client_recv &&
         a.caller_replica == b.caller_replica &&
         a.callee_replica == b.callee_replica &&
         a.caller_thread == b.caller_thread &&
         a.handler_thread == b.handler_thread &&
         a.true_parent == b.true_parent && a.true_trace == b.true_trace;
}

}  // namespace

SpanValidator::SpanValidator(SpanValidatorOptions options)
    : options_(options) {}

void SpanValidator::ObserveSkew(const Span& s) {
  // Only cross-vantage inversions are skew evidence: the two endpoints of
  // an RPC are captured by different clocks. A callee-local inversion
  // (server_send < server_recv) comes from one clock and is corruption.
  const std::int64_t request_gap = s.server_recv - s.client_send;
  const std::int64_t response_gap = s.client_recv - s.server_send;
  for (const std::int64_t gap : {request_gap, response_gap}) {
    if (gap >= 0) continue;
    const std::int64_t magnitude = -gap;
    skew_magnitudes_.push_back(magnitude);
    pair_magnitudes_[{s.caller, s.callee}].push_back(magnitude);
    ++stats_.skew_samples;
    stats_.max_skew_ns = std::max(stats_.max_skew_ns, magnitude);
  }
}

SpanId SpanValidator::FreshId() {
  if (next_remap_id_ == 0) next_remap_id_ = 1;
  while (seen_.count(next_remap_id_) != 0 ||
         next_remap_id_ == kInvalidSpanId) {
    ++next_remap_id_;
  }
  return next_remap_id_++;
}

SpanVerdict SpanValidator::AdmitStrict(const Span& s) {
  const obs::ProvRecorder prov(options_.provenance);
  if (NamesEmpty(s)) {
    ++stats_.empty_names;
    prov.Record(obs::ProvEventType::kValidatorQuarantine, s.id, 0,
                "empty_names");
    return SpanVerdict::kQuarantined;
  }
  if (ReplicasOutOfRange(s, options_.max_replica)) {
    ++stats_.replicas_rejected;
    prov.Record(obs::ProvEventType::kValidatorQuarantine, s.id, 0,
                "replicas");
    return SpanVerdict::kQuarantined;
  }
  if (!TimestampsConsistent(s)) {
    ObserveSkew(s);
    ++stats_.timestamps_rejected;
    prov.Record(obs::ProvEventType::kValidatorQuarantine, s.id, 0,
                "timestamps");
    return SpanVerdict::kQuarantined;
  }
  const auto [it, inserted] = seen_.try_emplace(s.id, s);
  if (!inserted) {
    ++stats_.duplicate_ids;
    ++stats_.duplicates_dropped;  // Keep-first: this occurrence goes.
    prov.Record(obs::ProvEventType::kValidatorDrop, s.id);
    return SpanVerdict::kQuarantined;
  }
  return SpanVerdict::kAccepted;
}

SpanVerdict SpanValidator::AdmitLenient(Span& s) {
  const obs::ProvRecorder prov(options_.provenance);
  if (NamesEmpty(s)) {
    // A span with no caller/callee/endpoint cannot be placed in any call
    // graph; there is nothing to repair it toward.
    ++stats_.empty_names;
    prov.Record(obs::ProvEventType::kValidatorQuarantine, s.id, 0,
                "empty_names");
    return SpanVerdict::kQuarantined;
  }
  bool repaired = false;
  bool replicas_clamped = false;
  bool timestamps_clamped = false;
  if (ReplicasOutOfRange(s, options_.max_replica)) {
    s.caller_replica =
        std::clamp(s.caller_replica, 0, options_.max_replica);
    s.callee_replica =
        std::clamp(s.callee_replica, 0, options_.max_replica);
    ++stats_.replicas_clamped;
    replicas_clamped = true;
    repaired = true;
  }
  if (!TimestampsConsistent(s)) {
    ObserveSkew(s);
    // Repair only same-clock inversions: each endpoint's two timestamps
    // come from one capture clock, so server_send < server_recv (or
    // client_recv < client_send) is corruption and gets clamped. A
    // cross-vantage inversion (server_recv < client_send) is clock skew
    // between two capture points -- rewriting those timestamps would
    // destroy the real delay distributions the reconstruction learns
    // from, so they pass through and the observed skew instead feeds
    // suggested_slack_ns (loosening the feasibility constraints is the
    // correct absorption mechanism for skew).
    bool corrupt = false;
    if (s.server_send < s.server_recv) {
      s.server_send = s.server_recv;
      corrupt = true;
    }
    if (s.client_recv < s.client_send) {
      s.client_recv = s.client_send;
      corrupt = true;
    }
    if (corrupt) {
      ++stats_.timestamps_clamped;
      timestamps_clamped = true;
      repaired = true;
    }
  }
  const auto [it, inserted] = seen_.try_emplace(s.id, s);
  if (!inserted) {
    ++stats_.duplicate_ids;
    if (SameRecord(s, it->second)) {
      // The same RPC captured twice: a second copy under any id would
      // fabricate a request that never happened, so keep-first.
      ++stats_.duplicates_dropped;
      prov.Record(obs::ProvEventType::kValidatorDrop, s.id);
      return SpanVerdict::kQuarantined;
    }
    const SpanId old_id = s.id;
    s.id = FreshId();
    seen_.emplace(s.id, s);
    ++stats_.duplicates_remapped;
    prov.Record(obs::ProvEventType::kValidatorRemap, s.id,
                static_cast<std::int64_t>(old_id));
    repaired = true;
  }
  // Clamp events keyed by the *final* id so they travel with the span the
  // pipeline actually commits.
  if (replicas_clamped) {
    prov.Record(obs::ProvEventType::kValidatorClamp, s.id, 0, "replicas");
  }
  if (timestamps_clamped) {
    prov.Record(obs::ProvEventType::kValidatorClamp, s.id, 0, "timestamps");
  }
  return repaired ? SpanVerdict::kRepaired : SpanVerdict::kAccepted;
}

SpanVerdict SpanValidator::Admit(Span& s) {
  ++stats_.input;
  SpanVerdict verdict;
  switch (options_.mode) {
    case IngestMode::kOff:
      verdict = SpanVerdict::kAccepted;
      break;
    case IngestMode::kStrict:
      verdict = AdmitStrict(s);
      break;
    case IngestMode::kLenient:
      verdict = AdmitLenient(s);
      break;
  }
  switch (verdict) {
    case SpanVerdict::kAccepted:
      ++stats_.accepted;
      break;
    case SpanVerdict::kRepaired:
      ++stats_.repaired;
      break;
    case SpanVerdict::kQuarantined:
      ++stats_.quarantined;
      quarantine_.push_back(s);
      break;
  }
  if (verdict != SpanVerdict::kQuarantined &&
      options_.skew_observer != nullptr &&
      options_.mode != IngestMode::kOff) {
    options_.skew_observer->ObserveSpan(s);
  }
  return verdict;
}

std::vector<Span> SpanValidator::Sanitize(std::vector<Span> spans) {
  // Pre-scan ids so duplicate remaps never collide with a genuine id
  // appearing later in the batch.
  SpanId max_id = 0;
  for (const Span& s : spans) {
    if (s.id != kInvalidSpanId) max_id = std::max(max_id, s.id);
  }
  if (max_id >= next_remap_id_) next_remap_id_ = max_id + 1;

  std::vector<Span> kept;
  kept.reserve(spans.size());
  for (Span& s : spans) {
    if (Admit(s) != SpanVerdict::kQuarantined) kept.push_back(std::move(s));
  }
  return kept;
}

const IngestStats& SpanValidator::Finish() {
  if (finished_) return stats_;
  finished_ = true;

  if (!skew_magnitudes_.empty()) {
    // Suggested feasibility slack: 2x the p99 skew magnitude. The p99
    // (index-based on the sorted magnitudes) is robust to a few garbled
    // outliers; the factor-2 headroom follows the parameters.h guidance of
    // setting slack to a small multiple of the observed jitter scale.
    std::sort(skew_magnitudes_.begin(), skew_magnitudes_.end());
    const std::size_t idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(skew_magnitudes_.size() - 1));
    stats_.suggested_slack_ns = 2 * skew_magnitudes_[idx];

    // The same magnitudes bucketed per service pair, worst pair first, so
    // warnings can point at the skewed edge instead of the whole
    // deployment. Map order keeps ties deterministic.
    for (auto& [pair, magnitudes] : pair_magnitudes_) {
      std::sort(magnitudes.begin(), magnitudes.end());
      IngestStats::PairSkew row;
      row.caller = pair.first;
      row.callee = pair.second;
      row.samples = magnitudes.size();
      row.max_skew_ns = magnitudes.back();
      row.p99_skew_ns = magnitudes[static_cast<std::size_t>(
          0.99 * static_cast<double>(magnitudes.size() - 1))];
      stats_.skew_pairs.push_back(std::move(row));
    }
    std::stable_sort(stats_.skew_pairs.begin(), stats_.skew_pairs.end(),
                     [](const IngestStats::PairSkew& a,
                        const IngestStats::PairSkew& b) {
                       return a.p99_skew_ns > b.p99_skew_ns;
                     });
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    const auto counter = [&reg](const char* name, const char* help) {
      return reg.GetCounter(name, "", help, "1");
    };
    counter("tw_ingest_spans_total", "Spans offered to the validator.")
        .Inc(stats_.input);
    counter("tw_ingest_accepted_total", "Spans passed through untouched.")
        .Inc(stats_.accepted);
    counter("tw_ingest_repaired_total", "Spans kept after repair.")
        .Inc(stats_.repaired);
    counter("tw_ingest_quarantined_total", "Spans rejected at ingest.")
        .Inc(stats_.quarantined);
    counter("tw_ingest_parse_errors_total",
            "Malformed serialized records dropped before span assembly.")
        .Inc(stats_.parse_errors);
    counter("tw_ingest_timestamps_clamped_total",
            "Spans with non-monotone timestamps repaired by clamping.")
        .Inc(stats_.timestamps_clamped);
    counter("tw_ingest_timestamps_rejected_total",
            "Strict mode: spans quarantined for timestamp inversions.")
        .Inc(stats_.timestamps_rejected);
    counter("tw_ingest_duplicate_ids_total", "Span-id collisions detected.")
        .Inc(stats_.duplicate_ids);
    counter("tw_ingest_duplicates_remapped_total",
            "Lenient mode: collided spans given fresh ids.")
        .Inc(stats_.duplicates_remapped);
    counter("tw_ingest_duplicates_dropped_total",
            "Strict mode: keep-first duplicate drops.")
        .Inc(stats_.duplicates_dropped);
    counter("tw_ingest_replicas_clamped_total",
            "Out-of-range replica indices clamped.")
        .Inc(stats_.replicas_clamped);
    counter("tw_ingest_empty_names_total",
            "Spans quarantined for empty caller/callee/endpoint.")
        .Inc(stats_.empty_names);
    obs::Histogram skew = reg.GetHistogram(
        "tw_ingest_skew_ns", "",
        "Observed cross-vantage clock-skew magnitudes.", "ns");
    for (const std::int64_t m : skew_magnitudes_) {
      skew.Observe(static_cast<std::uint64_t>(m));
    }
    reg.GetGauge("tw_ingest_suggested_slack_ns", "",
                 "Suggested Parameters::constraint_slack_ns derived from "
                 "the observed skew distribution.",
                 "ns")
        .Set(stats_.suggested_slack_ns);
    reg.GetGauge("tw_ingest_skew_pairs", "",
                 "Service pairs with observed cross-vantage inversions.",
                 "1")
        .Set(static_cast<std::int64_t>(stats_.skew_pairs.size()));
  }
  return stats_;
}

}  // namespace traceweaver
