#include "trace/jaeger_export.h"

#include <cstdio>
#include <map>
#include <sstream>

namespace traceweaver {
namespace {

std::string Hex(SpanId id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Emits one Jaeger span object. `parent` is kInvalidSpanId for the root.
void AppendSpan(std::string& out, const Span& s, SpanId parent,
                const std::string& trace_id,
                const std::map<std::string, std::string>& process_ids,
                const std::map<SpanId, JaegerSpanTags>* quality) {
  out += "{\"traceID\":\"" + trace_id + "\",";
  out += "\"spanID\":\"" + Hex(s.id) + "\",";
  out += "\"operationName\":\"";
  AppendEscaped(out, s.endpoint);
  out += "\",\"references\":[";
  if (parent != kInvalidSpanId) {
    out += "{\"refType\":\"CHILD_OF\",\"traceID\":\"" + trace_id +
           "\",\"spanID\":\"" + Hex(parent) + "\"}";
  }
  out += "],";
  // Jaeger timestamps are microseconds since epoch; use the callee-side
  // window, which is what the paper calls the span.
  out += "\"startTime\":" + std::to_string(s.server_recv / kNsPerUs) + ",";
  out += "\"duration\":" + std::to_string(s.ServerDuration() / kNsPerUs) +
         ",";
  out += "\"processID\":\"" + process_ids.at(s.callee) + "\",";
  out += "\"tags\":[{\"key\":\"caller\",\"type\":\"string\",\"value\":\"";
  AppendEscaped(out, s.caller);
  out += "\"},{\"key\":\"replica\",\"type\":\"int64\",\"value\":" +
         std::to_string(s.callee_replica) + "}";
  if (quality != nullptr) {
    const auto it = quality->find(s.id);
    if (it != quality->end()) {
      const JaegerSpanTags& t = it->second;
      out += ",{\"key\":\"tw.confidence\",\"type\":\"float64\",\"value\":" +
             Num(t.confidence) + "}";
      out += ",{\"key\":\"tw.runner_up_margin\",\"type\":\"float64\","
             "\"value\":" + Num(t.runner_up_margin) + "}";
      out += ",{\"key\":\"tw.candidates_considered\",\"type\":\"int64\","
             "\"value\":" + std::to_string(t.candidates_considered) + "}";
    }
  }
  out += "]}";
}

}  // namespace

std::string TraceToJaegerObject(
    const TraceForest& forest, std::size_t root_node,
    const std::map<SpanId, JaegerSpanTags>* quality) {
  const Span& root = forest.span_of(forest.nodes()[root_node]);
  const std::string trace_id = Hex(root.id);

  // Collect the subtree and assign process ids per service.
  const std::vector<SpanId> ids = forest.SubtreeSpanIds(root_node);
  std::map<std::string, std::string> process_ids;
  for (SpanId id : ids) {
    const Span& s = forest.span_by_id(id);
    if (process_ids.count(s.callee) == 0) {
      process_ids.emplace(
          s.callee, "p" + std::to_string(process_ids.size() + 1));
    }
  }

  // Parent lookup within the subtree.
  std::map<SpanId, SpanId> parent_of;
  std::vector<std::size_t> stack{root_node};
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    for (std::size_t c : forest.nodes()[n].children) {
      parent_of[forest.nodes()[c].span] = forest.nodes()[n].span;
      stack.push_back(c);
    }
  }

  std::string out = "{\"traceID\":\"" + trace_id + "\",\"spans\":[";
  bool first = true;
  for (SpanId id : ids) {
    if (!first) out += ',';
    first = false;
    const auto pit = parent_of.find(id);
    AppendSpan(out, forest.span_by_id(id),
               pit == parent_of.end() ? kInvalidSpanId : pit->second,
               trace_id, process_ids, quality);
  }
  out += "],\"processes\":{";
  first = true;
  for (const auto& [service, pid] : process_ids) {
    if (!first) out += ',';
    first = false;
    out += "\"" + pid + "\":{\"serviceName\":\"";
    AppendEscaped(out, service);
    out += "\"}";
  }
  out += "}}";
  return out;
}

std::string TracesToJaegerJson(
    const std::vector<Span>& spans, const ParentAssignment& assignment,
    const std::map<SpanId, JaegerSpanTags>* quality) {
  TraceForest forest(spans, assignment);
  std::string out = "{\"data\":[";
  bool first = true;
  for (std::size_t root : forest.roots()) {
    if (!first) out += ',';
    first = false;
    out += TraceToJaegerObject(forest, root, quality);
  }
  out += "]}";
  return out;
}

}  // namespace traceweaver
