#include "trace/span_soa.h"

namespace traceweaver {

std::uint32_t NameInterner::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::uint32_t NameInterner::Find(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kUnknown : it->second;
}

void SpanColumns::Build(std::span<const Span* const> src,
                        NameInterner* names) {
  const std::size_t n = src.size();
  client_send.resize(n);
  client_recv.resize(n);
  server_recv.resize(n);
  server_send.resize(n);
  caller_thread.resize(n);
  ids.resize(n);
  if (names != nullptr) {
    callee_ids.resize(n);
    endpoint_ids.resize(n);
  } else {
    callee_ids.clear();
    endpoint_ids.clear();
  }
  spans.assign(src.begin(), src.end());
  for (std::size_t i = 0; i < n; ++i) {
    const Span& s = *src[i];
    client_send[i] = s.client_send;
    client_recv[i] = s.client_recv;
    server_recv[i] = s.server_recv;
    server_send[i] = s.server_send;
    caller_thread[i] = s.caller_thread;
    ids[i] = s.id;
    if (names != nullptr) {
      callee_ids[i] = names->Intern(s.callee);
      endpoint_ids[i] = names->Intern(s.endpoint);
    }
  }
}

}  // namespace traceweaver
