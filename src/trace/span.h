// The span data model.
//
// A span is one request-response pair (one RPC) with metadata: caller,
// callee, API endpoint, and four network-layer timestamps that are all
// observable without application modification (eBPF / sidecar at either
// end of the connection):
//
//   client_send -- request leaves the caller
//   server_recv -- request arrives at the callee
//   server_send -- response leaves the callee
//   client_recv -- response arrives back at the caller
//
// At a service S the reconstruction problem relates *incoming* spans
// (callee == S, interval [server_recv, server_send]) to *outgoing* spans
// (caller == S, interval [client_send, client_recv]).
//
// Ground-truth linkage (true_parent / true_trace) is carried out-of-band by
// the simulator for accuracy evaluation only; the reconstruction algorithm
// never reads it.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/time_types.h"

namespace traceweaver {

using SpanId = std::uint64_t;
using TraceId = std::uint64_t;

constexpr SpanId kInvalidSpanId = std::numeric_limits<SpanId>::max();
constexpr TraceId kInvalidTraceId = std::numeric_limits<TraceId>::max();

/// Name used as the caller of root spans (external clients).
inline constexpr const char* kClientCaller = "client";

struct Span {
  SpanId id = kInvalidSpanId;

  std::string caller;    ///< Service issuing the request (or kClientCaller).
  std::string callee;    ///< Service handling the request.
  std::string endpoint;  ///< API endpoint on the callee.

  TimeNs client_send = 0;
  TimeNs server_recv = 0;
  TimeNs server_send = 0;
  TimeNs client_recv = 0;

  /// Container (replica) indices; requests observed at different replicas
  /// can never belong to the same parent (§4.1).
  int caller_replica = 0;
  int callee_replica = 0;

  /// Thread ids observed at the syscall layer: the thread that issued the
  /// request at the caller, and the thread that picked it up at the callee.
  /// Consumed only by the vPath/DeepFlow baseline (§6.1); 0 when the
  /// capture layer cannot provide them (e.g. the production dataset).
  int caller_thread = 0;
  int handler_thread = 0;

  // --- Ground truth, for evaluation only (never read by reconstruction) ---
  SpanId true_parent = kInvalidSpanId;
  TraceId true_trace = kInvalidTraceId;

  /// Observed duration at the callee side.
  DurationNs ServerDuration() const { return server_send - server_recv; }
  /// Observed duration at the caller side (includes network time).
  DurationNs ClientDuration() const { return client_recv - client_send; }

  bool IsRoot() const { return caller == kClientCaller; }
};

/// True if the four timestamps are internally consistent
/// (client_send <= server_recv <= server_send <= client_recv).
bool TimestampsConsistent(const Span& s);

/// Sort order used throughout the pipeline: by callee-side start time,
/// ties by callee-side end time, then id (total order for determinism).
struct SpanStartOrder {
  bool operator()(const Span& a, const Span& b) const {
    if (a.server_recv != b.server_recv) return a.server_recv < b.server_recv;
    if (a.server_send != b.server_send) return a.server_send < b.server_send;
    return a.id < b.id;
  }
};

/// Sort order for outgoing spans at a service: by caller-side send time.
struct SpanClientSendOrder {
  bool operator()(const Span& a, const Span& b) const {
    if (a.client_send != b.client_send) return a.client_send < b.client_send;
    if (a.client_recv != b.client_recv) return a.client_recv < b.client_recv;
    return a.id < b.id;
  }
};

}  // namespace traceweaver
