// Structure-of-arrays span views for the reconstruction hot path.
//
// The optimizer's inner loops (candidate gap extraction, seed-series
// construction, batch-window scans) touch only a few fields of each Span --
// the four timestamps, the thread ids -- yet the AoS layout drags the
// whole ~150-byte record (strings included) through the cache per span.
// SpanColumns transposes a span sequence into contiguous per-field arrays
// so those loops stream exactly the bytes they need; NameInterner maps the
// (service, endpoint) strings to dense ids once so hot paths compare
// integers instead of strings.
//
// Both are pure views: they copy field values out of the source spans and
// never mutate them, so building (or skipping) a view cannot change any
// reconstruction result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/span.h"

namespace traceweaver {

/// Dense string interner with stable ids and stable name storage.
/// Not thread-safe; intern during single-threaded setup, read anywhere.
class NameInterner {
 public:
  /// Returns the id for `name`, assigning the next dense id on first use.
  std::uint32_t Intern(std::string_view name);

  /// Looks up without interning; returns kUnknown when never interned.
  std::uint32_t Find(std::string_view name) const;

  const std::string& Name(std::uint32_t id) const { return names_[id]; }
  std::size_t size() const { return names_.size(); }

  static constexpr std::uint32_t kUnknown = 0xffffffffu;

 private:
  // Keys view into `names_`; deque never moves settled elements.
  std::unordered_map<std::string_view, std::uint32_t> ids_;
  std::deque<std::string> names_;
};

/// Contiguous per-field columns for one ordered span sequence (e.g. one
/// candidate pool, sorted by client_send). Column index i corresponds to
/// spans[i]; `spans` keeps the back-pointers for code that still needs the
/// full record.
struct SpanColumns {
  std::vector<TimeNs> client_send;
  std::vector<TimeNs> client_recv;
  std::vector<TimeNs> server_recv;
  std::vector<TimeNs> server_send;
  std::vector<std::int32_t> caller_thread;
  std::vector<SpanId> ids;
  /// Interned callee / endpoint ids; filled only when `names` is given to
  /// Build, else left empty.
  std::vector<std::uint32_t> callee_ids;
  std::vector<std::uint32_t> endpoint_ids;
  std::vector<const Span*> spans;

  /// Rebuilds every column from `src` (previous contents discarded).
  void Build(std::span<const Span* const> src, NameInterner* names = nullptr);

  std::size_t size() const { return spans.size(); }
  bool empty() const { return spans.empty(); }
};

}  // namespace traceweaver
