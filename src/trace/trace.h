// Request traces: trees of spans linked by parent pointers.
//
// A reconstruction (or the simulator's ground truth) is represented as a
// parent assignment: span id -> parent span id. TraceForest materializes
// the assignment into navigable trees rooted at external client requests.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "trace/span.h"

namespace traceweaver {

/// A mapping from each span to its (inferred or true) parent span.
/// Root spans map to kInvalidSpanId.
using ParentAssignment = std::unordered_map<SpanId, SpanId>;

/// One node of a materialized trace tree.
struct TraceNode {
  SpanId span = kInvalidSpanId;
  std::vector<std::size_t> children;  ///< Indices into TraceForest::nodes.
};

/// A forest of request traces built from spans plus a parent assignment.
class TraceForest {
 public:
  /// Builds trees; spans whose parent is missing from `spans` are treated
  /// as roots. Children are ordered by caller-side send time.
  TraceForest(const std::vector<Span>& spans,
              const ParentAssignment& parents);

  const std::vector<TraceNode>& nodes() const { return nodes_; }
  const std::vector<std::size_t>& roots() const { return roots_; }
  const Span& span_of(const TraceNode& n) const {
    return spans_->at(index_of_.at(n.span));
  }
  const Span& span_by_id(SpanId id) const {
    return spans_->at(index_of_.at(id));
  }

  /// Number of spans in the subtree rooted at node index `root`.
  std::size_t SubtreeSize(std::size_t root) const;

  /// End-to-end latency of the trace rooted at node index `root`
  /// (root span's caller-side duration; callee-side for true roots).
  DurationNs EndToEndLatency(std::size_t root) const;

  /// Collects all span ids in the subtree rooted at node index `root`.
  std::vector<SpanId> SubtreeSpanIds(std::size_t root) const;

 private:
  const std::vector<Span>* spans_;
  std::unordered_map<SpanId, std::size_t> index_of_;  // span id -> span index
  std::vector<TraceNode> nodes_;
  std::vector<std::size_t> roots_;
};

/// Extracts the ground-truth parent assignment carried by simulator spans.
ParentAssignment TrueParents(const std::vector<Span>& spans);

}  // namespace traceweaver
