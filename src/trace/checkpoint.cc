#include "trace/checkpoint.h"

#include <array>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>

namespace traceweaver {
namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Position of the value of a top-level `"key":`, or npos. Skips string
/// values wholesale (honoring escapes) so nothing inside them can be
/// mistaken for a key -- same contract as the JSONL span parser.
std::size_t FindValue(const std::string& line, const char* key) {
  const std::size_t key_len = std::strlen(key);
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '"') continue;
    if (line.compare(i + 1, key_len, key) == 0 &&
        i + 1 + key_len < line.size() && line[i + 1 + key_len] == '"') {
      std::size_t j = i + 2 + key_len;
      while (j < line.size() && IsJsonWhitespace(line[j])) ++j;
      if (j < line.size() && line[j] == ':') {
        ++j;
        while (j < line.size() && IsJsonWhitespace(line[j])) ++j;
        return j;
      }
    }
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') ++i;
      if (i < line.size()) ++i;
    }
    if (i >= line.size()) return std::string::npos;  // Unterminated.
  }
  return std::string::npos;
}

void AppendUtf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = BuildCrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

ChecksummedWriter::ChecksummedWriter(std::ostream& out, std::string schema)
    : out_(out), schema_(std::move(schema)) {}

void ChecksummedWriter::WriteLine(const std::string& line) {
  // Incremental CRC: seed with the running value so Finish() guards the
  // exact byte stream written (including newlines).
  crc_ = Crc32(line.data(), line.size(), crc_);
  const char nl = '\n';
  crc_ = Crc32(&nl, 1, crc_);
  out_ << line << '\n';
  ++lines_;
}

void ChecksummedWriter::Finish() {
  if (finished_) return;
  finished_ = true;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"footer\":\"%s\",\"lines\":%zu,\"crc32\":%lu}",
                schema_.c_str(), lines_, static_cast<unsigned long>(crc_));
  out_ << buf << '\n';
  out_.flush();
}

std::optional<std::vector<std::string>> ReadChecksummedLines(
    std::istream& in, const std::string& schema, std::string* error) {
  std::vector<std::string> lines;
  std::string line;
  std::uint32_t crc = 0;
  while (std::getline(in, line)) {
    if (line.rfind("{\"footer\":", 0) == 0) {
      const auto fschema = ckpt::FieldStr(line, "footer");
      const auto flines = ckpt::FieldU64(line, "lines");
      const auto fcrc = ckpt::FieldU64(line, "crc32");
      if (!fschema || !flines || !fcrc) {
        SetError(error, "malformed checkpoint footer");
        return std::nullopt;
      }
      if (*fschema != schema) {
        SetError(error, "checkpoint schema mismatch: found " + *fschema +
                            ", expected " + schema);
        return std::nullopt;
      }
      if (*flines != lines.size()) {
        SetError(error, "checkpoint line count mismatch (truncated file?)");
        return std::nullopt;
      }
      if (*fcrc != crc) {
        SetError(error, "checkpoint CRC mismatch (corrupted file)");
        return std::nullopt;
      }
      return lines;
    }
    crc = Crc32(line.data(), line.size(), crc);
    const char nl = '\n';
    crc = Crc32(&nl, 1, crc);
    lines.push_back(line);
  }
  SetError(error, "checkpoint footer missing (truncated file?)");
  return std::nullopt;
}

namespace ckpt {

std::optional<std::uint64_t> FieldU64(const std::string& line,
                                      const char* key) {
  const std::size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return std::nullopt;
  std::uint64_t v = 0;
  const auto [end, ec] =
      std::from_chars(line.data() + pos, line.data() + line.size(), v);
  if (ec != std::errc()) return std::nullopt;
  (void)end;
  return v;
}

std::optional<std::int64_t> FieldI64(const std::string& line,
                                     const char* key) {
  const std::size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return std::nullopt;
  std::int64_t v = 0;
  const auto [end, ec] =
      std::from_chars(line.data() + pos, line.data() + line.size(), v);
  if (ec != std::errc()) return std::nullopt;
  (void)end;
  return v;
}

std::optional<double> FieldF64(const std::string& line, const char* key) {
  const std::size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return std::nullopt;
  // strtod accepts the JSON number grammar plus more; the writer only
  // produces %.17g values, so this round-trips exactly.
  char* end = nullptr;
  const double v = std::strtod(line.c_str() + pos, &end);
  if (end == line.c_str() + pos) return std::nullopt;
  return v;
}

std::optional<std::string> FieldStr(const std::string& line,
                                    const char* key) {
  std::size_t pos = FindValue(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return std::nullopt;
  }
  ++pos;
  std::string out;
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) {
      ++pos;
      switch (line[pos]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 >= line.size()) return std::nullopt;
          unsigned cp = 0;
          for (int k = 1; k <= 4; ++k) {
            const char c = line[pos + k];
            cp <<= 4;
            if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
            else return std::nullopt;
          }
          AppendUtf8(out, cp);
          pos += 4;
          break;
        }
        default: return std::nullopt;
      }
      ++pos;
    } else {
      out += line[pos];
      ++pos;
    }
  }
  if (pos >= line.size()) return std::nullopt;  // Unterminated.
  return out;
}

void AppendStrField(std::string& out, const char* key,
                    const std::string& value) {
  out += '"';
  out += key;
  out += "\":\"";
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace ckpt
}  // namespace traceweaver
