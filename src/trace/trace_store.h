// Indexed storage of captured spans.
//
// Reconstruction runs independently per service container (§4.1): requests
// of parent spans arriving at container X only spawn child requests leaving
// container X. SpanStore indexes a span population by (service, replica) so
// the per-container views needed by the algorithm are cheap to obtain.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "trace/span.h"

namespace traceweaver {

/// Identifies one container of a service.
struct ServiceInstance {
  std::string service;
  int replica = 0;

  bool operator<(const ServiceInstance& o) const {
    if (service != o.service) return service < o.service;
    return replica < o.replica;
  }
  bool operator==(const ServiceInstance& o) const {
    return service == o.service && replica == o.replica;
  }
};

/// Everything the per-service optimizer needs for one container: incoming
/// spans (handled by this container) and outgoing spans (issued by it),
/// grouped by callee service.
struct ContainerView {
  ServiceInstance instance;
  /// Spans with callee == instance (sorted by SpanStartOrder).
  std::vector<const Span*> incoming;
  /// Outgoing spans grouped by callee service name, each sorted by
  /// SpanClientSendOrder.
  std::map<std::string, std::vector<const Span*>> outgoing_by_callee;
};

/// Owns a span population and serves per-container views.
class SpanStore {
 public:
  SpanStore() = default;
  explicit SpanStore(std::vector<Span> spans);

  void Add(Span span);

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }

  /// All containers that handled at least one incoming span.
  std::vector<ServiceInstance> Containers() const;

  /// Builds the view for one container. Pointers are valid until the store
  /// is mutated.
  ContainerView ViewOf(const ServiceInstance& instance) const;

  /// Builds the views of all containers (same order as Containers()) in two
  /// passes over the spans instead of one full scan per container. Each
  /// view is identical to ViewOf(instance).
  std::vector<ContainerView> AllViews() const;

  /// Looks a span up by id; nullptr if unknown.
  const Span* Find(SpanId id) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace traceweaver
