// Span ingestion validation / sanitization (the robustness layer in front
// of reconstruction).
//
// The paper's deployment model -- eBPF/sidecar capture at the network
// layer (§3) -- guarantees imperfect input in production: capture clocks
// at different vantage points are skewed, TCP streams get truncated,
// records are dropped and duplicated. The reconstruction pipeline assumes
// well-formed spans (monotone timestamps, unique ids, named services), so
// every ingest path (JSONL reader, wire capture -> span assembly,
// simulator output) runs its population through a SpanValidator first.
//
// Two modes:
//   * kLenient (default): repair what is repairable -- clamp same-clock
//     timestamp inversions (server_send < server_recv, client_recv <
//     client_send: both timestamps of such a pair come from one capture
//     clock, so an inversion is corruption), drop exact duplicate records
//     (the same RPC captured twice), remap id collisions between distinct
//     spans to fresh ids, clamp out-of-range replica indices -- and
//     quarantine only what is not (empty caller/callee/endpoint names).
//   * kStrict: never modify a span; anything inconsistent is quarantined
//     (duplicates keep the first occurrence).
//
// Cross-vantage timestamp inversions (server_recv < client_send,
// client_recv < server_send) are evidence of capture-clock skew rather
// than corruption; lenient mode deliberately passes them through
// unmodified (rewriting them would destroy the delay distributions the
// reconstruction learns from). Instead the validator records their
// magnitudes and derives a suggested Parameters::constraint_slack_ns
// from the observed skew distribution, so the feasibility constraints in
// candidate enumeration stop pruning the *correct* candidate under skew.
//
// Everything the validator does is counted (IngestStats) and, when a
// MetricsRegistry is supplied, exported as the `tw_ingest_*` family
// (docs/METRICS.md) which BuildRunReport rolls into the run report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "trace/span.h"

namespace traceweaver::obs {
class MetricsRegistry;    // obs/metrics.h
class ProvenanceLedger;   // obs/provenance.h
}

namespace traceweaver {

enum class IngestMode {
  kOff,      ///< Pass everything through untouched (counting only input).
  kLenient,  ///< Repair what is repairable, quarantine the rest.
  kStrict,   ///< Never modify; quarantine anything inconsistent.
};

/// Outcome of admitting one span.
enum class SpanVerdict {
  kAccepted,     ///< Clean: passed through bit-identical.
  kRepaired,     ///< Modified (clamped / remapped) and kept.
  kQuarantined,  ///< Rejected; available via SpanValidator::quarantine().
};

/// Sink for per-span skew evidence: every span the validator keeps is
/// offered to the observer (not just inversions -- positive cross-vantage
/// gaps bound the feasible clock offset from the other side). Implemented
/// by core/skew_estimator.h; declared here so the trace layer never
/// depends on core.
class SkewObserver {
 public:
  virtual ~SkewObserver() = default;
  virtual void ObserveSpan(const Span& s) = 0;
};

struct SpanValidatorOptions {
  IngestMode mode = IngestMode::kLenient;
  /// Replica indices outside [0, max_replica] are out of range.
  int max_replica = 1 << 20;
  /// Optional registry the final stats are flushed into by Finish().
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional skew-evidence sink fed every kept span (post same-clock
  /// repair, which never touches the cross-vantage gaps). Not owned.
  SkewObserver* skew_observer = nullptr;
  /// Optional decision-provenance sink (obs/provenance.h): every repair
  /// (clamp, id remap) and rejection (duplicate drop, quarantine) is
  /// recorded against the span's final id. Null disables recording;
  /// verdicts are identical either way. Not owned.
  obs::ProvenanceLedger* provenance = nullptr;
};

/// Counts of everything the validator saw and did. All counts are in
/// spans (not fields) except where noted.
struct IngestStats {
  std::uint64_t input = 0;        ///< Spans offered to Admit().
  std::uint64_t accepted = 0;     ///< Passed through untouched.
  std::uint64_t repaired = 0;     ///< Kept after modification.
  std::uint64_t quarantined = 0;  ///< Rejected.
  /// Malformed serialized lines that never produced a span; recorded by
  /// the caller of the JSONL reader via RecordParseErrors().
  std::uint64_t parse_errors = 0;

  // --- Breakdown (a span can contribute to several). ---
  std::uint64_t timestamps_clamped = 0;   ///< Non-monotone chains repaired.
  std::uint64_t timestamps_rejected = 0;  ///< Strict-mode inversions.
  std::uint64_t duplicate_ids = 0;        ///< Collisions detected.
  /// Lenient: id collisions between *distinct* spans given fresh ids.
  std::uint64_t duplicates_remapped = 0;
  /// Keep-first drops: strict drops every collision; lenient drops only
  /// exact duplicate records (identical payload = the same RPC captured
  /// twice, so a second copy would fabricate a phantom request).
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t replicas_clamped = 0;     ///< Out-of-range replica fields.
  std::uint64_t replicas_rejected = 0;    ///< Strict-mode replica rejects.
  std::uint64_t empty_names = 0;          ///< Empty caller/callee/endpoint.

  // --- Skew observations (cross-vantage inversions only). ---
  std::uint64_t skew_samples = 0;
  std::int64_t max_skew_ns = 0;
  /// Suggested Parameters::constraint_slack_ns covering the observed skew
  /// distribution (2x its p99 magnitude); 0 when no skew was observed.
  std::int64_t suggested_slack_ns = 0;

  /// Per-(caller service, callee service) inversion summary, so a warning
  /// can name the worst pair instead of blaming the whole deployment.
  struct PairSkew {
    std::string caller;
    std::string callee;
    std::uint64_t samples = 0;
    std::int64_t max_skew_ns = 0;
    std::int64_t p99_skew_ns = 0;
  };
  /// Sorted worst-first (by p99 magnitude, then caller/callee name);
  /// filled by Finish(). Empty when no inversions were observed.
  std::vector<PairSkew> skew_pairs;

  std::uint64_t Kept() const { return accepted + repaired; }
};

/// Streaming validator: feed spans through Admit() (or a whole population
/// through Sanitize()), then call Finish() once to derive the suggested
/// slack and flush `tw_ingest_*` metrics.
class SpanValidator {
 public:
  explicit SpanValidator(SpanValidatorOptions options = {});

  /// Validates (and under kLenient possibly repairs) one span in place.
  /// Returns the verdict; on kQuarantined the span is copied into
  /// quarantine() and should not be used.
  SpanVerdict Admit(Span& s);

  /// Batch convenience: admits every span, preserving order of the kept
  /// ones. Pre-scans ids so lenient duplicate remaps can never collide
  /// with a later span's genuine id.
  std::vector<Span> Sanitize(std::vector<Span> spans);

  /// Counts malformed serialized records the caller's parser dropped
  /// before a Span ever existed (surfaced in stats and metrics).
  void RecordParseErrors(std::uint64_t n) { stats_.parse_errors += n; }

  /// Derives suggested_slack_ns from the collected skew samples and, if a
  /// registry was configured, flushes every count into `tw_ingest_*`.
  /// Idempotent per validator (flushes at most once). Returns the stats.
  const IngestStats& Finish();

  const IngestStats& stats() const { return stats_; }
  const std::vector<Span>& quarantine() const { return quarantine_; }
  const SpanValidatorOptions& options() const { return options_; }

 private:
  SpanVerdict AdmitLenient(Span& s);
  SpanVerdict AdmitStrict(const Span& s);
  /// Records cross-vantage inversion magnitudes of `s` as skew evidence.
  void ObserveSkew(const Span& s);
  SpanId FreshId();

  SpanValidatorOptions options_;
  IngestStats stats_;
  std::vector<Span> quarantine_;
  /// First-seen span per id, kept so a collision can be classified as an
  /// exact duplicate record (drop) vs. a distinct span (remap).
  std::unordered_map<SpanId, Span> seen_;
  std::vector<std::int64_t> skew_magnitudes_;
  /// Inversion magnitudes bucketed per (caller service, callee service).
  std::map<std::pair<std::string, std::string>, std::vector<std::int64_t>>
      pair_magnitudes_;
  SpanId next_remap_id_ = 0;  ///< 0 = derive from max seen id.
  bool finished_ = false;
};

}  // namespace traceweaver
