// JSONL (one JSON object per line) serialization for spans.
//
// This is the interchange format of the span-ingestion tooling: the capture
// pipeline can persist spans to disk in offline mode (§5.3) and the
// reconstruction process can re-ingest them later. The format is
// intentionally flat and self-describing.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/span.h"

namespace traceweaver {

/// Serializes one span as a single JSON line (no trailing newline).
std::string SpanToJson(const Span& s, bool include_ground_truth = false);

/// Parses a span from a JSON line produced by SpanToJson. Returns nullopt
/// on malformed input (missing required fields, bad numbers).
std::optional<Span> SpanFromJson(const std::string& line);

/// Writes the whole population, one line per span.
void WriteSpansJsonl(std::ostream& out, const std::vector<Span>& spans,
                     bool include_ground_truth = false);

/// Reads spans line by line; malformed lines are skipped and counted in
/// *dropped if provided.
std::vector<Span> ReadSpansJsonl(std::istream& in,
                                 std::size_t* dropped = nullptr);

}  // namespace traceweaver
