#include "trace/trace.h"

#include <algorithm>

namespace traceweaver {

ParentAssignment TrueParents(const std::vector<Span>& spans) {
  ParentAssignment parents;
  parents.reserve(spans.size());
  for (const Span& s : spans) parents[s.id] = s.true_parent;
  return parents;
}

TraceForest::TraceForest(const std::vector<Span>& spans,
                         const ParentAssignment& parents)
    : spans_(&spans) {
  index_of_.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    index_of_[spans[i].id] = i;
  }

  nodes_.reserve(spans.size());
  std::unordered_map<SpanId, std::size_t> node_of;
  node_of.reserve(spans.size());
  for (const Span& s : spans) {
    node_of[s.id] = nodes_.size();
    nodes_.push_back(TraceNode{s.id, {}});
  }

  for (const Span& s : spans) {
    SpanId parent = kInvalidSpanId;
    if (auto it = parents.find(s.id); it != parents.end()) {
      parent = it->second;
    }
    auto pit = node_of.find(parent);
    if (parent == kInvalidSpanId || pit == node_of.end()) {
      roots_.push_back(node_of[s.id]);
    } else {
      nodes_[pit->second].children.push_back(node_of[s.id]);
    }
  }

  // Deterministic child order: by caller-side send time.
  for (TraceNode& n : nodes_) {
    std::sort(n.children.begin(), n.children.end(),
              [this](std::size_t a, std::size_t b) {
                const Span& sa = span_of(nodes_[a]);
                const Span& sb = span_of(nodes_[b]);
                return SpanClientSendOrder{}(sa, sb);
              });
  }
}

std::size_t TraceForest::SubtreeSize(std::size_t root) const {
  std::size_t count = 0;
  std::vector<std::size_t> stack{root};
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    ++count;
    for (std::size_t c : nodes_[i].children) stack.push_back(c);
  }
  return count;
}

DurationNs TraceForest::EndToEndLatency(std::size_t root) const {
  const Span& s = span_of(nodes_[root]);
  // For external roots there is no caller-side capture point, so use the
  // callee-side duration; otherwise prefer the caller-side view.
  return s.IsRoot() ? s.ServerDuration() : s.ClientDuration();
}

std::vector<SpanId> TraceForest::SubtreeSpanIds(std::size_t root) const {
  std::vector<SpanId> out;
  std::vector<std::size_t> stack{root};
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    out.push_back(nodes_[i].span);
    for (std::size_t c : nodes_[i].children) stack.push_back(c);
  }
  return out;
}

}  // namespace traceweaver
