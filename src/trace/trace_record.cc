#include "trace/trace_record.h"

#include <cstdio>
#include <cstring>

#include "trace/checkpoint.h"
#include "trace/jsonl_io.h"

namespace traceweaver {
namespace {

void AppendF64(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.6f", key, v);
  out += buf;
}

void AppendBool(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += v ? "\":true" : "\":false";
}

/// Position just past a top-level `"key":` in `line` (string-aware, same
/// contract as the jsonl_io/checkpoint field scanners), or npos. Needed
/// here because the record embeds whole span objects: scalar extraction
/// must stop before the `spans` array so a span field can never shadow a
/// record field.
std::size_t TopLevelValue(const std::string& line, const char* key) {
  const std::size_t key_len = std::strlen(key);
  int depth = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
    } else if (c == '"') {
      if (depth == 1 && line.compare(i + 1, key_len, key) == 0 &&
          i + 1 + key_len < line.size() && line[i + 1 + key_len] == '"' &&
          i + 2 + key_len < line.size() && line[i + 2 + key_len] == ':') {
        return i + 3 + key_len;
      }
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') ++i;
        if (i < line.size()) ++i;
      }
      if (i >= line.size()) return std::string::npos;
    }
  }
  return std::string::npos;
}

bool TopLevelBool(const std::string& line, const char* key) {
  const std::size_t pos = TopLevelValue(line, key);
  return pos != std::string::npos && line.compare(pos, 4, "true") == 0;
}

/// Splits a JSON array of objects starting at line[pos] == '['. Elements
/// are returned verbatim; returns false on malformed framing.
bool SplitObjectArray(const std::string& line, std::size_t pos,
                      std::vector<std::string>& elements) {
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '[') {
    return false;
  }
  ++pos;
  while (pos < line.size()) {
    if (line[pos] == ']') return true;
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    if (line[pos] != '{') return false;
    const std::size_t start = pos;
    int depth = 0;
    bool in_string = false;
    for (; pos < line.size(); ++pos) {
      const char c = line[pos];
      if (in_string) {
        if (c == '\\') {
          ++pos;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          elements.push_back(line.substr(start, pos - start + 1));
          ++pos;
          break;
        }
      }
    }
    if (depth != 0) return false;
  }
  return false;  // No closing ']'.
}

}  // namespace

std::string TraceRecordToJson(const TraceRecord& record) {
  std::string out = "{\"schema\":\"";
  out += TraceRecord::kSchema;
  out += "\",\"trace\":";
  out += std::to_string(static_cast<std::uint64_t>(record.trace_id));
  ckpt::AppendStrField(out += ',', "root_service", record.root_service);
  ckpt::AppendStrField(out += ',', "root_endpoint", record.root_endpoint);
  out += ",\"start\":";
  out += std::to_string(static_cast<std::int64_t>(record.start));
  out += ",\"end\":";
  out += std::to_string(static_cast<std::int64_t>(record.end));
  out += ",\"grade\":\"";
  out += record.grade;
  out += '"';
  AppendF64(out, "confidence", record.confidence);
  AppendF64(out, "min_confidence", record.min_confidence);
  AppendBool(out, "orphan", record.orphan);
  AppendBool(out, "suspect", record.suspect);
  out += ",\"span_count\":";
  out += std::to_string(record.spans.size());
  out += ",\"spans\":[";
  for (std::size_t i = 0; i < record.spans.size(); ++i) {
    if (i > 0) out += ',';
    out += SpanToJson(record.spans[i], /*include_ground_truth=*/true);
  }
  out += "],\"parents\":[";
  for (std::size_t i = 0; i < record.parents.size(); ++i) {
    if (i > 0) out += ',';
    out += '[';
    out += std::to_string(static_cast<std::uint64_t>(record.parents[i].first));
    out += ',';
    out +=
        std::to_string(static_cast<std::uint64_t>(record.parents[i].second));
    out += ']';
  }
  out += ']';
  if (!record.provenance.empty()) {
    out += ",\"provenance\":[";
    for (std::size_t i = 0; i < record.provenance.size(); ++i) {
      if (i > 0) out += ',';
      out += obs::ProvEventToJson(record.provenance[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::optional<TraceRecord> TraceRecordFromJson(const std::string& line) {
  // Scalars come from the prefix before the spans array so span fields
  // can never alias record fields; the checkpoint field helpers handle
  // escapes on the string values.
  const std::size_t spans_pos = TopLevelValue(line, "spans");
  if (spans_pos == std::string::npos) return std::nullopt;
  const std::string head = line.substr(0, spans_pos);
  const auto schema = ckpt::FieldStr(head, "schema");
  if (!schema || *schema != TraceRecord::kSchema) return std::nullopt;

  TraceRecord record;
  const auto trace = ckpt::FieldU64(head, "trace");
  const auto service = ckpt::FieldStr(head, "root_service");
  const auto endpoint = ckpt::FieldStr(head, "root_endpoint");
  const auto start = ckpt::FieldI64(head, "start");
  const auto end = ckpt::FieldI64(head, "end");
  const auto grade = ckpt::FieldStr(head, "grade");
  const auto confidence = ckpt::FieldF64(head, "confidence");
  const auto min_confidence = ckpt::FieldF64(head, "min_confidence");
  if (!trace || !service || !endpoint || !start || !end || !grade ||
      grade->size() != 1 || !confidence || !min_confidence) {
    return std::nullopt;
  }
  record.trace_id = *trace;
  record.root_service = *service;
  record.root_endpoint = *endpoint;
  record.start = *start;
  record.end = *end;
  record.grade = (*grade)[0];
  record.confidence = *confidence;
  record.min_confidence = *min_confidence;
  record.orphan = TopLevelBool(head, "orphan");
  record.suspect = TopLevelBool(head, "suspect");

  std::vector<std::string> elements;
  if (!SplitObjectArray(line, spans_pos, elements)) return std::nullopt;
  record.spans.reserve(elements.size());
  for (const std::string& element : elements) {
    auto span = SpanFromJson(element);
    if (!span) return std::nullopt;
    record.spans.push_back(std::move(*span));
  }
  if (record.spans.empty()) return std::nullopt;

  // Parent edges: a flat [[child,parent],...] of unsigned decimals.
  std::size_t pos = TopLevelValue(line, "parents");
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '[') {
    return std::nullopt;
  }
  ++pos;
  while (pos < line.size() && line[pos] != ']') {
    if (line[pos] == ',' || line[pos] == '[') {
      ++pos;
      continue;
    }
    char* after = nullptr;
    const SpanId child = std::strtoull(line.c_str() + pos, &after, 10);
    pos = static_cast<std::size_t>(after - line.c_str());
    if (pos >= line.size() || line[pos] != ',') return std::nullopt;
    const SpanId parent = std::strtoull(line.c_str() + pos + 1, &after, 10);
    pos = static_cast<std::size_t>(after - line.c_str());
    if (pos >= line.size() || line[pos] != ']') return std::nullopt;
    ++pos;
    record.parents.emplace_back(child, parent);
  }
  if (pos >= line.size()) return std::nullopt;

  // Optional provenance block (absent on records committed without a
  // ledger and on every pre-provenance record).
  const std::size_t prov_pos = TopLevelValue(line, "provenance");
  if (prov_pos != std::string::npos) {
    std::vector<std::string> events;
    if (!SplitObjectArray(line, prov_pos, events)) return std::nullopt;
    record.provenance.reserve(events.size());
    for (const std::string& element : events) {
      auto event = obs::ProvEventFromJson(element);
      if (!event) return std::nullopt;
      record.provenance.push_back(std::move(*event));
    }
  }
  return record;
}

}  // namespace traceweaver
