#include "util/arena.h"

#include <algorithm>
#include <cstdint>

namespace traceweaver {

namespace {

inline std::size_t AlignUp(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Block-relative cursor of the next address >= `offset` aligned to
/// `align`. Alignment must be computed on the address, not the offset:
/// operator new[] only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the
/// block base, so an aligned offset into an unaligned base is not enough
/// for over-aligned requests.
inline std::size_t AlignedStart(const std::byte* base, std::size_t offset,
                                std::size_t align) {
  const auto addr = reinterpret_cast<std::uintptr_t>(base) + offset;
  return AlignUp(addr, align) - reinterpret_cast<std::uintptr_t>(base);
}

}  // namespace

void* ArenaAllocator::Allocate(std::size_t bytes, std::size_t align) {
  ++allocations_;
  if (!blocks_.empty()) {
    Block& b = blocks_[block_];
    const std::size_t start = AlignedStart(b.data.get(), offset_, align);
    if (start + bytes <= b.size) {
      void* p = b.data.get() + start;
      used_ += (start - offset_) + bytes;
      offset_ = start + bytes;
      high_water_ = std::max(high_water_, used_);
      return p;
    }
  }
  return AllocateSlow(bytes, align);
}

void* ArenaAllocator::AllocateSlow(std::size_t bytes, std::size_t align) {
  // Count the unusable tail of the current block as used so high-water
  // reflects the arena position, then advance to the next block that fits.
  while (block_ + 1 < blocks_.size()) {
    used_ += blocks_[block_].size - offset_;
    ++block_;
    offset_ = 0;
    Block& b = blocks_[block_];
    const std::size_t start = AlignedStart(b.data.get(), offset_, align);
    if (start + bytes <= b.size) {
      void* p = b.data.get() + start;
      used_ += start + bytes;
      offset_ = start + bytes;
      high_water_ = std::max(high_water_, used_);
      return p;
    }
  }
  if (!blocks_.empty()) {
    used_ += blocks_[block_].size - offset_;
  }
  // Grow geometrically from the last block, and always large enough for the
  // request plus worst-case alignment padding.
  std::size_t next = blocks_.empty() ? first_block_bytes_
                                     : blocks_.back().size * 2;
  next = std::max(next, bytes + align);
  blocks_.push_back(Block{std::make_unique<std::byte[]>(next), next});
  reserved_ += next;
  block_ = blocks_.size() - 1;
  offset_ = 0;
  Block& b = blocks_[block_];
  const std::size_t start = AlignedStart(b.data.get(), offset_, align);
  void* p = b.data.get() + start;
  used_ += start + bytes;
  offset_ = start + bytes;
  high_water_ = std::max(high_water_, used_);
  return p;
}

void ArenaAllocator::Reset() {
  block_ = 0;
  offset_ = 0;
  used_ = 0;
}

}  // namespace traceweaver
