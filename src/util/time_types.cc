#include "util/time_types.h"

#include <cmath>
#include <cstdio>

namespace traceweaver {

std::string FormatDuration(DurationNs d) {
  const double abs = std::fabs(static_cast<double>(d));
  char buf[64];
  if (abs >= static_cast<double>(kNsPerSec)) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(d));
  } else if (abs >= static_cast<double>(kNsPerMs)) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMillis(d));
  } else if (abs >= static_cast<double>(kNsPerUs)) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ToMicros(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace traceweaver
