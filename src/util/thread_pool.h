// A reusable worker pool for data-parallel loops.
//
// One pool is shared across the whole reconstruction pipeline (containers,
// per-task enumeration/ranking, per-run batch solving, per-key GMM refits)
// so a single thread count governs total parallelism instead of each stage
// spawning and joining its own threads.
//
// ParallelFor is *caller-participating*: the invoking thread claims and
// executes indices alongside the workers, so a ParallelFor issued from
// inside a worker (nested parallelism) can always finish on its own even
// when every other worker is busy -- completion never depends on pool
// capacity, which makes nesting deadlock-free by construction.
//
// Determinism contract: ParallelFor(n, fn) runs fn(i) exactly once for each
// i in [0, n), in unspecified order and possibly concurrently. Callers get
// deterministic pipelines by writing results into per-index slots and
// merging them in index order after the call returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace traceweaver {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller of ParallelFor is the
  /// remaining thread). `num_threads <= 1` spawns nothing and ParallelFor
  /// degrades to a plain serial loop.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that may execute loop bodies (workers + caller).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) exactly once for every i in [0, n); blocks until all
  /// indices completed. Safe to call concurrently from multiple threads
  /// and from inside a running loop body (nested). `fn` must not throw.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Convenience wrapper: serial loop when `pool` is null, ParallelFor
  /// otherwise. Lets pipeline stages take an optional pool pointer.
  static void Run(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::atomic<std::size_t> next{0};  ///< Next unclaimed index.
    std::atomic<std::size_t> done{0};  ///< Completed indices.
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
  };

  void WorkerLoop();
  /// Claims and runs indices of `job` until none remain unclaimed.
  void DrainJob(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Workers sleep here.
  std::condition_variable done_cv_;  ///< ParallelFor callers wait here.
  std::deque<std::shared_ptr<Job>> jobs_;  ///< Jobs with unclaimed indices.
  bool stop_ = false;
};

}  // namespace traceweaver
