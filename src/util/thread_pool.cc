#include "util/thread_pool.h"

namespace traceweaver {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainJob(Job& job) {
  for (std::size_t i = job.next.fetch_add(1); i < job.n;
       i = job.next.fetch_add(1)) {
    (*job.fn)(i);
    if (job.done.fetch_add(1) + 1 == job.n) {
      // Last index finished; wake the owner. Lock so the notify cannot
      // slip between the owner's predicate check and its wait.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  // The caller works too: even if every worker is busy (or this call came
  // from inside a worker), the loop completes.
  DrainJob(*job);

  // All indices are claimed; drop the job from the queue if no worker has
  // pruned it yet, then wait out stragglers still running their last index.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job->done.load() == job->n; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
    if (stop_) return;
    // Front job with unclaimed indices; prune exhausted ones on the way.
    std::shared_ptr<Job> job;
    while (!jobs_.empty()) {
      if (jobs_.front()->next.load() >= jobs_.front()->n) {
        jobs_.pop_front();
        continue;
      }
      job = jobs_.front();
      break;
    }
    if (job == nullptr) continue;
    lock.unlock();
    DrainJob(*job);
    lock.lock();
  }
}

void ThreadPool::Run(ThreadPool* pool, std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace traceweaver
