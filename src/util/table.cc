#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace traceweaver {

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FmtPct(double frac, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, frac * 100.0);
  return buf;
}

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  // Compute per-column widths across header and all rows.
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << "  ";
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

}  // namespace traceweaver
