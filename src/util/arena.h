// Monotonic arena allocator for per-window reconstruction scratch.
//
// The optimizer's inner loops (candidate enumeration, batched scoring,
// conflict-graph / MWIS assembly) need many short-lived buffers per task or
// per solve run. Allocating them from the general heap costs a malloc/free
// pair per buffer and scatters them across the address space; the arena
// hands out bump-pointer slices from a few large blocks instead, and a
// whole generation of scratch is released with one Reset() that retains
// the blocks for the next generation.
//
// Properties:
//   * Monotonic: Allocate() only moves a cursor; nothing is freed until
//     Reset(). Reset() keeps every block, so a warmed-up arena performs no
//     further heap allocation.
//   * Aligned: every allocation honours its requested alignment.
//   * Accounted: used / reserved / high-water / allocation counters back
//     the `tw_arena_*` metrics so the online admission controller can
//     budget against real scratch cost (see docs/METRICS.md).
//
// Not thread-safe; use one arena per thread (the optimizer keeps one per
// worker) or per solve run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace traceweaver {

class ArenaAllocator {
 public:
  /// `first_block_bytes` sizes the initial block; later blocks grow
  /// geometrically (x2) so total block count stays logarithmic in peak use.
  explicit ArenaAllocator(std::size_t first_block_bytes = 64 * 1024)
      : first_block_bytes_(first_block_bytes == 0 ? 1 : first_block_bytes) {}

  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns nullptr; zero-byte requests get a valid unique-ish
  /// pointer into the current block.
  void* Allocate(std::size_t bytes, std::size_t align);

  /// Typed array of `n` elements, uninitialized storage.
  template <typename T>
  T* AllocateArray(std::size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds the cursor to the start, keeping every block for reuse.
  /// Previously returned pointers become invalid (their storage will be
  /// handed out again).
  void Reset();

  /// Bytes handed out (including alignment padding) since the last Reset.
  std::size_t used() const { return used_; }
  /// Total bytes owned across all blocks.
  std::size_t reserved() const { return reserved_; }
  /// Maximum used() observed over the arena's lifetime.
  std::size_t high_water() const { return high_water_; }
  /// Allocate() calls over the arena's lifetime.
  std::uint64_t allocations() const { return allocations_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Slow path: advance to (or create) a block that fits `bytes`.
  void* AllocateSlow(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< Index of the block the cursor is in.
  std::size_t offset_ = 0;  ///< Cursor within blocks_[block_].
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t allocations_ = 0;
  std::size_t first_block_bytes_;
};

/// Minimal STL allocator over an ArenaAllocator, for routing container
/// scratch (conflict-graph edge lists, vertex tables) through the arena.
/// deallocate() is a no-op -- memory comes back only via Reset() -- so
/// containers should clear() and reuse capacity rather than shrink.
template <typename T>
class ArenaStlAllocator {
 public:
  using value_type = T;

  explicit ArenaStlAllocator(ArenaAllocator* arena) : arena_(arena) {}
  template <typename U>
  ArenaStlAllocator(const ArenaStlAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(std::size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, std::size_t) {}

  ArenaAllocator* arena() const { return arena_; }

  bool operator==(const ArenaStlAllocator& o) const {
    return arena_ == o.arena_;
  }
  bool operator!=(const ArenaStlAllocator& o) const { return !(*this == o); }

 private:
  ArenaAllocator* arena_;
};

}  // namespace traceweaver
