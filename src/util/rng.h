// Deterministic random number generation for simulation and statistics.
//
// Every stochastic component in the repository draws from an explicitly
// seeded Rng instance; nothing touches global random state. This keeps
// simulations, tests, and benchmark runs fully reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/time_types.h"

namespace traceweaver {

/// A seeded random engine with convenience draws for the distributions used
/// by the simulator and the statistical estimators.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::mt19937_64& engine() { return engine_; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Normal draw.
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Log-normal draw parameterized by the underlying normal's (mu, sigma).
  double LogNormal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  /// Exponential draw with the given mean (not rate).
  double ExpWithMean(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// A non-negative duration drawn from Normal(mean, stddev), clamped at
  /// `floor`. Used for service processing times where negative durations are
  /// meaningless.
  DurationNs NormalDuration(DurationNs mean, DurationNs stddev,
                            DurationNs floor = 0) {
    const double v = Normal(static_cast<double>(mean),
                            static_cast<double>(stddev));
    const auto d = static_cast<DurationNs>(v);
    return d < floor ? floor : d;
  }

  /// Next inter-arrival gap of a Poisson process with the given rate
  /// (events per second).
  DurationNs PoissonGap(double events_per_sec) {
    const double gap_sec = ExpWithMean(1.0 / events_per_sec);
    return static_cast<DurationNs>(gap_sec *
                                   static_cast<double>(kNsPerSec));
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with a positive sum.
  std::size_t WeightedIndex(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Derives an independent child generator; useful for giving each
  /// simulated component its own stream.
  Rng Fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace traceweaver
