// Strong time primitives used throughout TraceWeaver.
//
// All timestamps in the system are nanoseconds on a single simulated (or
// captured) monotonic clock. We deliberately use a plain signed 64-bit base
// so that gaps (which can be transiently negative under clock jitter) are
// representable without UB, and provide small helpers for construction from
// human units.
#pragma once

#include <cstdint>
#include <string>

namespace traceweaver {

/// A point in time, nanoseconds since an arbitrary monotonic epoch.
using TimeNs = std::int64_t;

/// A signed duration in nanoseconds.
using DurationNs = std::int64_t;

constexpr DurationNs kNsPerUs = 1'000;
constexpr DurationNs kNsPerMs = 1'000'000;
constexpr DurationNs kNsPerSec = 1'000'000'000;

constexpr DurationNs Micros(double us) {
  return static_cast<DurationNs>(us * static_cast<double>(kNsPerUs));
}
constexpr DurationNs Millis(double ms) {
  return static_cast<DurationNs>(ms * static_cast<double>(kNsPerMs));
}
constexpr DurationNs Seconds(double s) {
  return static_cast<DurationNs>(s * static_cast<double>(kNsPerSec));
}

constexpr double ToMicros(DurationNs d) {
  return static_cast<double>(d) / static_cast<double>(kNsPerUs);
}
constexpr double ToMillis(DurationNs d) {
  return static_cast<double>(d) / static_cast<double>(kNsPerMs);
}
constexpr double ToSeconds(DurationNs d) {
  return static_cast<double>(d) / static_cast<double>(kNsPerSec);
}

/// Formats a duration with an adaptive unit, e.g. "12.3ms", for logs and
/// bench output.
std::string FormatDuration(DurationNs d);

}  // namespace traceweaver
