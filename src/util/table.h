// Aligned text-table printing for benchmark harness output.
//
// Every bench binary reproduces a paper table/figure as rows of series
// values; this helper keeps their output uniform and readable.
#pragma once

#include <string>
#include <vector>

namespace traceweaver {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; rows may have differing cell counts.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with column alignment and a rule under the header.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
std::string Fmt(double v, int decimals = 2);

/// Formats a fraction in [0,1] as a percentage string, e.g. "93.1%".
std::string FmtPct(double frac, int decimals = 1);

}  // namespace traceweaver
