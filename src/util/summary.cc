#include "util/summary.h"

#include <algorithm>
#include <cmath>

namespace traceweaver {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double SampleStddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

Summary::Summary(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = Mean(sorted_);
  stddev_ = SampleStddev(sorted_);
}

double Summary::min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
double Summary::max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }

double Summary::Percentile(double p) const {
  if (sorted_.empty()) return 0.0;
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank =
      p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

}  // namespace traceweaver
