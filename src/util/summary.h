// Descriptive statistics over samples: mean/stddev/percentiles.
//
// Used by the evaluation harness (latency profiles, accuracy boxplots) and
// by the delay estimators' seed computation.
#pragma once

#include <cstddef>
#include <vector>

namespace traceweaver {

/// Immutable summary of a sample set. Construction sorts a copy of the data
/// once; percentile queries are then O(1).
class Summary {
 public:
  /// Builds a summary; an empty sample set yields all-zero statistics.
  explicit Summary(std::vector<double> samples);

  std::size_t count() const { return sorted_.size(); }
  double mean() const { return mean_; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const { return stddev_; }
  double min() const;
  double max() const;

  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
};

/// Convenience: mean of a sample set (0 if empty).
double Mean(const std::vector<double>& xs);

/// Convenience: sample standard deviation (n-1); 0 for n < 2.
double SampleStddev(const std::vector<double>& xs);

}  // namespace traceweaver
