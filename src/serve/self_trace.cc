#include "serve/self_trace.h"

namespace traceweaver::serve {
namespace {

constexpr const char* kStageNames[kSelfStageCount] = {
    "ingest", "validate", "window", "enumerate",
    "solve",  "graft",    "commit", "seal"};

/// High bit marks self-trace span ids; the low bits carry the window
/// start, so ids are unique per window and stable across restarts
/// (replaying a window after checkpoint resume re-commits the same id,
/// which TraceStore::Commit drops idempotently).
constexpr SpanId kSelfTraceIdBit = SpanId{1} << 63;

}  // namespace

const char* SelfStageName(SelfStage stage) {
  return kStageNames[static_cast<std::size_t>(stage)];
}

SpanId SelfTracer::CommitWindow(TimeNs window_start) {
  const SpanId root =
      kSelfTraceIdBit | static_cast<SpanId>(static_cast<std::uint64_t>(
                            window_start < 0 ? 0 : window_start));

  TraceRecord record;
  record.trace_id = root;
  record.root_service = kSelfTraceService;
  record.root_endpoint = "/window";
  record.grade = 'A';
  record.confidence = 1.0;
  record.min_confidence = 1.0;

  // Children tile [window_start, window_start + total) in stage order;
  // the root covers the whole tiling. Zero-cost stages become zero-width
  // spans rather than disappearing, so every self trace has the same
  // 1 + kSelfStageCount shape.
  TimeNs t = window_start;
  Span root_span;
  root_span.id = root;
  root_span.caller = kClientCaller;
  root_span.callee = kSelfTraceService;
  root_span.endpoint = "/window";
  root_span.client_send = window_start;
  root_span.server_recv = window_start;
  record.spans.push_back(root_span);

  for (std::size_t i = 0; i < kSelfStageCount; ++i) {
    const DurationNs wall = stage_ns_[i] < 0 ? 0 : stage_ns_[i];
    Span s;
    s.id = root + 1 + static_cast<SpanId>(i);
    s.caller = kSelfTraceService;
    s.callee = std::string("_tw.") + kStageNames[i];
    s.endpoint = std::string("/") + kStageNames[i];
    s.client_send = t;
    s.server_recv = t;
    s.server_send = t + wall;
    s.client_recv = t + wall;
    t += wall;
    record.spans.push_back(s);
    record.parents.emplace_back(s.id, root);
  }
  record.spans[0].server_send = t;
  record.spans[0].client_recv = t;
  record.start = window_start;
  record.end = t;

  // Self traces bypass the committer, so stamp the settle outcome here:
  // the provenance endpoint answers for them like for any other trace.
  record.provenance.push_back(
      {obs::ProvEventType::kSettled, root,
       static_cast<std::int64_t>(record.spans.size()), "self_trace"});

  for (DurationNs& ns : stage_ns_) ns = 0;
  if (!store_->Commit(std::move(record))) return kInvalidSpanId;
  ++committed_;
  return root;
}

}  // namespace traceweaver::serve
