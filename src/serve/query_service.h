// The trace query API: HTTP routes over a TraceStore (DESIGN.md §4h,
// docs/API.md is the authoritative endpoint reference).
//
//   GET /traces/{id}          one committed trace (traceweaver.trace.v1)
//   GET /traces?service=&from=&to=&grade=&min_confidence=&limit=
//                             matching traces, chunked JSONL streaming
//                             (from/to in nanoseconds, span timebase)
//   GET /traces/{id}/explain[?parent=]
//                             candidate score breakdown
//                             (traceweaver.explain.v1) via core/explain
//   GET /metrics              Prometheus 0.0.4 exposition of the shared
//                             registry (tw_online_*, tw_store_*,
//                             tw_http_*, pipeline families)
//   GET /healthz              liveness + store stats
//
// Handle() is called concurrently by the HTTP workers; the store's
// snapshot index makes reads safe against the ingesting writer, and
// explain runs a fresh single-threaded weaver per request (cold path by
// design).
#pragma once

#include <string>

#include "callgraph/call_graph.h"
#include "core/trace_weaver.h"
#include "serve/http_server.h"
#include "store/store.h"

namespace traceweaver::serve {

struct QueryServiceOptions {
  /// Hard cap on one listing response; a larger (or absent) limit= is
  /// clamped to this. Streaming is chunked, so this bounds work, not
  /// memory.
  std::size_t max_results = 1000;
  /// Explain reconstruction options (threads forced to 1 per request).
  TraceWeaverOptions explain_weaver;
};

class QueryService {
 public:
  /// `store` must outlive the service. `graph` enables /explain (null ->
  /// 404 on that route). `metrics` backs /metrics and receives the
  /// request-level tw_http_* counters; null disables both.
  QueryService(const store::TraceStore* store, const CallGraph* graph,
               obs::MetricsRegistry* metrics,
               QueryServiceOptions options = {});

  /// The HttpServer handler. Thread-safe.
  void Handle(const HttpRequest& request, HttpResponse& response);

 private:
  void HandleTraceList(const HttpRequest& request, HttpResponse& response);
  void HandleTraceGet(SpanId id, HttpResponse& response);
  void HandleExplain(SpanId id, const HttpRequest& request,
                     HttpResponse& response);
  void HandleMetrics(HttpResponse& response);
  void HandleHealth(HttpResponse& response);
  const store::TraceStore* store_;
  const CallGraph* graph_;
  obs::MetricsRegistry* metrics_;
  QueryServiceOptions options_;

  // Pre-registered handles (GetCounter locks the registry; Handle must
  // not). Routes: 0 trace_get, 1 trace_list, 2 explain, 3 metrics,
  // 4 healthz, 5 other. Statuses: 200/400/404/405/500.
  obs::Counter route_requests_[6];
  obs::Counter status_responses_[5];
  obs::Histogram request_ns_;
};

}  // namespace traceweaver::serve
