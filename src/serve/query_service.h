// The trace query API: HTTP routes over a TraceStore (DESIGN.md §4h,
// docs/API.md is the authoritative endpoint reference).
//
//   GET /traces/{id}          one committed trace (traceweaver.trace.v1)
//   GET /traces?service=&from=&to=&grade=&min_confidence=&limit=
//                             matching traces, chunked JSONL streaming
//                             (from/to in nanoseconds, span timebase)
//   GET /traces/{id}/explain[?parent=]
//                             candidate score breakdown
//                             (traceweaver.explain.v1) via core/explain
//   GET /traces/{id}/provenance
//                             the trace's decision-provenance ledger
//                             (traceweaver.provenance.v1)
//   GET /metrics              Prometheus 0.0.4 exposition of the shared
//                             registry (tw_online_*, tw_store_*,
//                             tw_http_*, tw_prov_*, pipeline families)
//                             plus scrape-time derived series (cache hit
//                             ratio, error ratio, per-route latency
//                             summaries) -- see MetricsExposition below
//   GET /healthz              liveness + store stats
//
// Handle() is called concurrently by the HTTP workers; the store's
// snapshot index makes reads safe against the ingesting writer, and
// explain runs a fresh single-threaded weaver per request (cold path by
// design).
#pragma once

#include <string>

#include "callgraph/call_graph.h"
#include "core/trace_weaver.h"
#include "serve/http_server.h"
#include "store/store.h"

namespace traceweaver::serve {

/// The full /metrics response body: the registry's Prometheus 0.0.4
/// exposition plus derived series computed from the same snapshot at
/// scrape time (they are ratios/quantiles of other metrics, so storing
/// them in the registry would race with their inputs):
///   tw_store_cache_hit_ratio       gauge in [0,1] (0 before any lookup)
///   tw_http_error_ratio            non-200 responses / all responses
///   tw_http_route_latency_ns       summary: p50/p99 + _sum/_count per
///                                  route, from tw_http_route_request_ns
std::string MetricsExposition(const obs::RegistrySnapshot& snapshot);

/// The GET /traces/{id}/provenance body (one line, no trailing newline),
/// schema `traceweaver.provenance.v1`: the record's decision ledger as
/// `{"schema":...,"trace":<id>,"events":[...]}`. Shared with the
/// `traceweaver provenance` subcommand.
std::string ProvenanceJson(const TraceRecord& record);

struct QueryServiceOptions {
  /// Hard cap on one listing response; a larger (or absent) limit= is
  /// clamped to this. Streaming is chunked, so this bounds work, not
  /// memory.
  std::size_t max_results = 1000;
  /// Explain reconstruction options (threads forced to 1 per request).
  TraceWeaverOptions explain_weaver;
};

class QueryService {
 public:
  /// `store` must outlive the service. `graph` enables /explain (null ->
  /// 404 on that route). `metrics` backs /metrics and receives the
  /// request-level tw_http_* counters; null disables both.
  QueryService(const store::TraceStore* store, const CallGraph* graph,
               obs::MetricsRegistry* metrics,
               QueryServiceOptions options = {});

  /// The HttpServer handler. Thread-safe.
  void Handle(const HttpRequest& request, HttpResponse& response);

 private:
  void HandleTraceList(const HttpRequest& request, HttpResponse& response);
  void HandleTraceGet(SpanId id, HttpResponse& response);
  void HandleExplain(SpanId id, const HttpRequest& request,
                     HttpResponse& response);
  void HandleProvenance(SpanId id, HttpResponse& response);
  void HandleMetrics(HttpResponse& response);
  void HandleHealth(HttpResponse& response);
  const store::TraceStore* store_;
  const CallGraph* graph_;
  obs::MetricsRegistry* metrics_;
  QueryServiceOptions options_;

  // Pre-registered handles (GetCounter locks the registry; Handle must
  // not). Routes: 0 trace_get, 1 trace_list, 2 explain, 3 metrics,
  // 4 healthz, 5 other, 6 provenance. Statuses: 200/400/404/405/500.
  obs::Counter route_requests_[7];
  obs::Counter status_responses_[5];
  obs::Histogram request_ns_;
  obs::Histogram route_ns_[7];  ///< Same latency, split per route.
};

}  // namespace traceweaver::serve
