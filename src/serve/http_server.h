// A small long-running HTTP/1.1 server for the trace query service
// (DESIGN.md §4h) -- the collector's HttpStreamParser run in *server*
// mode: the same incremental framing parser that assembles captured
// request streams also parses the query API's inbound requests, so the
// serving layer inherits its hardening (bounded pending buffer, hostile
// framing -> sticky error) for free.
//
// Architecture: one accept thread plus a fixed pool of connection
// workers draining an accepted-socket queue (the connection/worker loop
// of a classic pre-threaded server). Each worker owns one connection at
// a time: feed bytes to the parser, dispatch complete requests to the
// handler, write the response, keep-alive until the peer closes, errors,
// or times out. Responses are either fixed-length or chunked; chunked
// responses stream incrementally (one chunk per result record), which is
// how `GET /traces` returns arbitrarily large result sets in flat
// memory.
//
// Linux-only (POSIX sockets); binds 127.0.0.1 by default. Port 0 picks
// an ephemeral port, reported by port() after Start() -- tests use this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace traceweaver::serve {

struct HttpRequest {
  std::string method;  ///< Uppercase as sent ("GET").
  std::string target;  ///< Raw request target ("/traces?grade=A").
  std::string path;    ///< Decoded path without the query string.
  /// Decoded query parameters in order of appearance.
  std::vector<std::pair<std::string, std::string>> params;

  /// First value of a query parameter; empty when absent.
  std::string Param(std::string_view key) const;
  bool HasParam(std::string_view key) const;
};

/// Per-request response writer. Exactly one of Send() or the
/// BeginChunked()/Chunk()/EndChunked() sequence must be used; the server
/// sends a 500 if the handler produced nothing.
class HttpResponse {
 public:
  /// One-shot fixed-length response.
  void Send(int status, std::string_view content_type,
            std::string_view body);

  /// Starts a chunked response; Chunk() streams each piece to the socket
  /// immediately.
  void BeginChunked(int status, std::string_view content_type);
  void Chunk(std::string_view data);
  void EndChunked();

  bool sent() const { return sent_; }
  int status() const { return status_; }
  std::size_t bytes_written() const { return bytes_; }

 private:
  friend class HttpServer;
  explicit HttpResponse(int fd) : fd_(fd) {}
  bool WriteAll(std::string_view data);

  int fd_ = -1;
  bool sent_ = false;
  bool chunked_ = false;
  bool ok_ = true;  ///< Socket still writable.
  int status_ = 0;
  std::size_t bytes_ = 0;
};

using HttpHandler = std::function<void(const HttpRequest&, HttpResponse&)>;

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; see port() after Start().
  std::size_t worker_threads = 4;
  /// Per-connection socket read timeout; an idle keep-alive connection is
  /// closed after this.
  int idle_timeout_ms = 5000;
  /// Accepted connections queued ahead of the workers; beyond this the
  /// accept loop closes new connections immediately (load shedding).
  std::size_t max_queued_connections = 128;
  /// Metric sink for the connection-level tw_http_* metrics. Not owned.
  obs::MetricsRegistry* metrics = nullptr;
};

class HttpServer {
 public:
  HttpServer(HttpHandler handler, HttpServerOptions options = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the accept/worker threads. Returns false
  /// with a reason in *error (already-running counts as success).
  bool Start(std::string* error = nullptr);

  /// Stops accepting, drains workers and joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(); }
  /// The bound port (resolves option port 0); 0 before Start().
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  HttpHandler handler_;
  HttpServerOptions options_;
  std::atomic<int> listen_fd_{-1};  ///< Raced by Stop() vs AcceptLoop().
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;

  obs::Counter connections_;
  obs::Counter connections_shed_;
  obs::Counter parse_errors_;
  obs::Counter bytes_sent_;
  obs::Gauge active_connections_;
};

/// Decodes %XX and '+' in a URL component; malformed escapes are kept
/// literally (hostile input must not make decoding fail).
std::string UrlDecode(std::string_view s);

/// Splits a request target into path + decoded query parameters.
void ParseTarget(std::string_view target, HttpRequest& request);

}  // namespace traceweaver::serve
