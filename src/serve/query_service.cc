#include "serve/query_service.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "core/explain.h"
#include "obs/prometheus.h"
#include "obs/provenance.h"

namespace traceweaver::serve {
namespace {

constexpr const char* kRouteNames[7] = {"trace_get", "trace_list", "explain",
                                        "metrics",   "healthz",    "other",
                                        "provenance"};
constexpr int kStatusCodes[5] = {200, 400, 404, 405, 500};
constexpr const char* kJson = "application/json";
constexpr const char* kText = "text/plain";
/// Prometheus text exposition format version.
constexpr const char* kPromText = "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kNdjson = "application/x-ndjson";

int StatusIndex(int status) {
  for (int i = 0; i < 5; ++i) {
    if (kStatusCodes[i] == status) return i;
  }
  return 4;  // Anything unexpected counts as a server error.
}

bool ParseU64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') return false;
  *out = v;
  return true;
}

bool ParseI64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Builds a store query from the request's parameters; false (with a
/// human-readable reason) on any malformed value -- hostile query strings
/// must produce a 400, never a crash or a silently-empty result.
bool BuildQuery(const HttpRequest& request, std::size_t max_results,
                store::TraceQuery* query, std::string* reason) {
  query->service = request.Param("service");
  if (request.HasParam("from")) {
    if (!ParseI64(request.Param("from"), &query->from)) {
      *reason = "bad 'from': expected integer nanoseconds";
      return false;
    }
  }
  if (request.HasParam("to")) {
    if (!ParseI64(request.Param("to"), &query->to)) {
      *reason = "bad 'to': expected integer nanoseconds";
      return false;
    }
  }
  if (request.HasParam("grade")) {
    const std::string g = request.Param("grade");
    const char c = g.size() == 1 ? static_cast<char>(std::toupper(
                                       static_cast<unsigned char>(g[0])))
                                 : '\0';
    if (c < 'A' || c > 'D') {
      *reason = "bad 'grade': expected A, B, C or D";
      return false;
    }
    query->max_grade = c;
  }
  if (request.HasParam("min_confidence")) {
    double v = 0.0;
    if (!ParseDouble(request.Param("min_confidence"), &v) || v < 0.0 ||
        v > 1.0) {
      *reason = "bad 'min_confidence': expected a number in [0, 1]";
      return false;
    }
    query->min_confidence = v;
  }
  query->limit = max_results;
  if (request.HasParam("limit")) {
    std::uint64_t v = 0;
    if (!ParseU64(request.Param("limit"), &v) || v == 0) {
      *reason = "bad 'limit': expected a positive integer";
      return false;
    }
    if (v < query->limit) query->limit = static_cast<std::size_t>(v);
  }
  return true;
}

/// Appends one gauge series with HELP/TYPE headers and a %.6f value.
void AppendRatio(std::string& out, const char* name, const char* help,
                 double value) {
  char buf[352];
  std::snprintf(buf, sizeof(buf),
                "# HELP %s %s\n# TYPE %s gauge\n%s %.6f\n", name, help, name,
                name, value);
  out += buf;
}

}  // namespace

std::string MetricsExposition(const obs::RegistrySnapshot& snapshot) {
  std::string out = obs::PrometheusText(snapshot);

  const double hits =
      static_cast<double>(snapshot.Value("tw_store_cache_hits_total"));
  const double lookups =
      hits + static_cast<double>(snapshot.Value("tw_store_cache_misses_total"));
  AppendRatio(out, "tw_store_cache_hit_ratio",
              "Hot-trace cache hits / lookups since start (derived at "
              "scrape time; 0 before the first lookup)",
              lookups > 0 ? hits / lookups : 0.0);

  const double responses = static_cast<double>(
      snapshot.SumAcrossLabels("tw_http_responses_total"));
  const double ok = static_cast<double>(
      snapshot.Value("tw_http_responses_total", "code=\"200\""));
  AppendRatio(out, "tw_http_error_ratio",
              "Non-200 responses / all responses since start (derived at "
              "scrape time; 0 before the first response)",
              responses > 0 ? (responses - ok) / responses : 0.0);

  const auto family = snapshot.Family("tw_http_route_request_ns");
  if (!family.empty()) {
    out +=
        "# HELP tw_http_route_latency_ns Per-route request latency summary "
        "(quantiles are log2-bucket upper edges of "
        "tw_http_route_request_ns, derived at scrape time)\n"
        "# TYPE tw_http_route_latency_ns summary\n";
    char buf[256];
    for (const obs::MetricSnapshot* m : family) {
      for (const double q : {0.5, 0.99}) {
        std::snprintf(buf, sizeof(buf),
                      "tw_http_route_latency_ns{%s,quantile=\"%g\"} %llu\n",
                      m->labels.c_str(), q,
                      static_cast<unsigned long long>(
                          m->histogram.Quantile(q)));
        out += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "tw_http_route_latency_ns_sum{%s} %llu\n"
                    "tw_http_route_latency_ns_count{%s} %llu\n",
                    m->labels.c_str(),
                    static_cast<unsigned long long>(m->histogram.sum),
                    m->labels.c_str(),
                    static_cast<unsigned long long>(m->histogram.count));
      out += buf;
    }
  }
  return out;
}

QueryService::QueryService(const store::TraceStore* store,
                           const CallGraph* graph,
                           obs::MetricsRegistry* metrics,
                           QueryServiceOptions options)
    : store_(store), graph_(graph), metrics_(metrics),
      options_(std::move(options)) {
  options_.explain_weaver.num_threads = 1;
  options_.explain_weaver.metrics = nullptr;
  if (metrics_ == nullptr) return;
  for (int r = 0; r < 7; ++r) {
    route_requests_[r] = metrics_->GetCounter(
        "tw_http_requests_total",
        "route=\"" + std::string(kRouteNames[r]) + "\"",
        "Requests dispatched, by route", "1");
    route_ns_[r] = metrics_->GetHistogram(
        "tw_http_route_request_ns",
        "route=\"" + std::string(kRouteNames[r]) + "\"",
        "Request handling latency, by route", "ns");
  }
  for (int s = 0; s < 5; ++s) {
    status_responses_[s] = metrics_->GetCounter(
        "tw_http_responses_total",
        "code=\"" + std::to_string(kStatusCodes[s]) + "\"",
        "Responses sent, by status code", "1");
  }
  request_ns_ = metrics_->GetHistogram("tw_http_request_ns", "",
                                       "Request handling latency", "ns");
}

void QueryService::Handle(const HttpRequest& request, HttpResponse& response) {
  const auto begin = std::chrono::steady_clock::now();
  int route = 5;
  const std::string_view path = request.path;
  if (request.method != "GET") {
    response.Send(405, kText, "only GET is supported\n");
  } else if (path == "/metrics") {
    route = 3;
    HandleMetrics(response);
  } else if (path == "/healthz") {
    route = 4;
    HandleHealth(response);
  } else if (path == "/traces" || path == "/traces/") {
    route = 1;
    HandleTraceList(request, response);
  } else if (path.rfind("/traces/", 0) == 0) {
    std::string_view rest = path.substr(8);
    bool explain = false;
    bool provenance = false;
    if (rest.size() > 8 && rest.substr(rest.size() - 8) == "/explain") {
      explain = true;
      rest = rest.substr(0, rest.size() - 8);
    } else if (rest.size() > 11 &&
               rest.substr(rest.size() - 11) == "/provenance") {
      provenance = true;
      rest = rest.substr(0, rest.size() - 11);
    }
    route = explain ? 2 : (provenance ? 6 : 0);
    std::uint64_t id = 0;
    if (!ParseU64(std::string(rest), &id)) {
      response.Send(400, kText, "bad trace id: expected a decimal span id\n");
    } else if (explain) {
      HandleExplain(static_cast<SpanId>(id), request, response);
    } else if (provenance) {
      HandleProvenance(static_cast<SpanId>(id), response);
    } else {
      HandleTraceGet(static_cast<SpanId>(id), response);
    }
  } else {
    response.Send(404, kText, "no such resource\n");
  }

  route_requests_[route].Inc();
  if (response.sent()) {
    status_responses_[StatusIndex(response.status())].Inc();
  }
  const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
  request_ns_.Observe(elapsed_ns);
  route_ns_[route].Observe(elapsed_ns);
}

void QueryService::HandleTraceGet(SpanId id, HttpResponse& response) {
  const std::shared_ptr<const TraceRecord> record = store_->Get(id);
  if (record == nullptr) {
    response.Send(404, kText, "trace not found\n");
    return;
  }
  response.Send(200, kJson, TraceRecordToJson(*record) + "\n");
}

void QueryService::HandleTraceList(const HttpRequest& request,
                                   HttpResponse& response) {
  store::TraceQuery query;
  std::string reason;
  if (!BuildQuery(request, options_.max_results, &query, &reason)) {
    response.Send(400, kText, reason + "\n");
    return;
  }
  // The body streams: one chunk per record, flat memory regardless of the
  // result count. Unreadable sealed records (segment file gone) are
  // skipped -- a partial answer beats a mid-stream abort.
  response.BeginChunked(200, kNdjson);
  store_->Query(query, [&response](const store::TraceSummary&,
                                   const std::shared_ptr<const TraceRecord>&
                                       record) {
    if (record != nullptr) {
      response.Chunk(TraceRecordToJson(*record) + "\n");
    }
    return true;
  });
  response.EndChunked();
}

void QueryService::HandleExplain(SpanId id, const HttpRequest& request,
                                 HttpResponse& response) {
  if (graph_ == nullptr) {
    response.Send(404, kText, "explain is disabled (no call graph loaded)\n");
    return;
  }
  const std::shared_ptr<const TraceRecord> record = store_->Get(id);
  if (record == nullptr) {
    response.Send(404, kText, "trace not found\n");
    return;
  }
  SpanId parent = id;  // Default: explain the root span's mapping.
  if (request.HasParam("parent")) {
    std::uint64_t v = 0;
    if (!ParseU64(request.Param("parent"), &v)) {
      response.Send(400, kText, "bad 'parent': expected a decimal span id\n");
      return;
    }
    parent = static_cast<SpanId>(v);
  }
  // Re-runs reconstruction over just this trace's spans -- identical to
  // `traceweaver explain` on a file holding the one trace (see docs/API.md
  // for the candidate-population caveat vs the original full-stream run).
  ExplainCapture capture;
  TraceWeaverOptions opts = options_.explain_weaver;
  opts.optimizer.explain_parent = parent;
  opts.optimizer.explain_out = &capture;
  TraceWeaver weaver(*graph_, opts);
  (void)weaver.Reconstruct(record->spans);
  if (!capture.found) {
    response.Send(404, kText, "span is not a parent in this trace\n");
    return;
  }
  response.Send(200, kJson, ExplainJson(capture));
}

std::string ProvenanceJson(const TraceRecord& record) {
  std::string body = "{\"schema\":\"traceweaver.provenance.v1\",\"trace\":";
  body += std::to_string(static_cast<std::uint64_t>(record.trace_id));
  body += ",\"events\":[";
  for (std::size_t i = 0; i < record.provenance.size(); ++i) {
    if (i > 0) body += ',';
    body += obs::ProvEventToJson(record.provenance[i]);
  }
  body += "]}";
  return body;
}

void QueryService::HandleProvenance(SpanId id, HttpResponse& response) {
  const std::shared_ptr<const TraceRecord> record = store_->Get(id);
  if (record == nullptr) {
    response.Send(404, kText, "trace not found\n");
    return;
  }
  response.Send(200, kJson, ProvenanceJson(*record) + "\n");
}

void QueryService::HandleMetrics(HttpResponse& response) {
  if (metrics_ == nullptr) {
    response.Send(404, kText, "metrics are disabled\n");
    return;
  }
  response.Send(200, kPromText, MetricsExposition(metrics_->Snapshot()));
}

void QueryService::HandleHealth(HttpResponse& response) {
  std::string body = "{\"status\":\"ok\",\"traces\":";
  body += std::to_string(store_->size());
  body += ",\"sealed_segments\":";
  body += std::to_string(store_->sealed_segments());
  body += ",\"active_traces\":";
  body += std::to_string(store_->active_traces());
  body += "}\n";
  response.Send(200, kJson, body);
}

}  // namespace traceweaver::serve
