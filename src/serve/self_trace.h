// Pipeline self-tracing: the serve loop observes itself with its own
// data model (DESIGN.md §4j). Every processed window becomes one
// synthetic TraceWeaver-format trace -- a root span for the window under
// the reserved root service `_tw.pipeline` plus one child span per
// pipeline stage (ingest -> validate -> window -> enumerate -> solve ->
// graft -> commit -> seal) -- committed into the same TraceStore as real
// traffic, so the pipeline's own behaviour is queryable over the HTTP
// API and Jaeger-exportable with the exact tooling operators already use
// for application traces.
//
// Timestamps live on the *data* timebase: children tile the window
// starting at window_start sequentially, each stretched to the stage's
// measured wall time, so span durations read as real stage costs while
// the trace sorts and filters alongside the window it describes. Stage
// walls are wall-clock measurements and therefore non-deterministic run
// to run; self-tracing is opt-in (`serve --self-trace`) and write-only
// -- self traces never feed back into reconstruction or its metrics.
#pragma once

#include <cstddef>

#include "store/store.h"

namespace traceweaver::serve {

/// Reserved root service of every self trace. The leading underscore
/// keeps it out of any real deployment's namespace; stage children use
/// `_tw.<stage>` callees under the same prefix.
inline constexpr const char* kSelfTraceService = "_tw.pipeline";

/// The serve-loop stages a self trace breaks a window into, in pipeline
/// order (also the order of the child spans).
enum class SelfStage {
  kIngest,     ///< Reading + parsing source spans.
  kValidate,   ///< SpanValidator admission.
  kWindow,     ///< Weaver windowing/buffering (Advance minus the rest).
  kEnumerate,  ///< Candidate enumeration inside CloseWindow.
  kSolve,      ///< Score + assignment inside CloseWindow.
  kGraft,      ///< Late-span graft servicing.
  kCommit,     ///< Committer merge + store commit.
  kSeal,       ///< Store seal + checkpoint write.
};
inline constexpr std::size_t kSelfStageCount = 8;

/// Stable lower-case stage name ("ingest", ..., "seal").
const char* SelfStageName(SelfStage stage);

/// Accumulates per-stage wall time and, at each window close, commits one
/// synthetic trace describing it. Single-threaded (the serve ingest
/// loop); the store pointer is not owned.
class SelfTracer {
 public:
  explicit SelfTracer(store::TraceStore* store) : store_(store) {}

  /// Adds `wall_ns` to the current window's bucket for `stage`.
  void Record(SelfStage stage, DurationNs wall_ns) {
    stage_ns_[static_cast<std::size_t>(stage)] += wall_ns;
  }

  /// Builds and commits the self trace for the window starting at
  /// `window_start` (data timebase), then resets the stage buckets for
  /// the next window. Returns the trace id, or kInvalidSpanId when the
  /// store rejected the commit (duplicate id).
  SpanId CommitWindow(TimeNs window_start);

  std::size_t committed() const { return committed_; }

 private:
  store::TraceStore* store_;
  DurationNs stage_ns_[kSelfStageCount] = {};
  std::size_t committed_ = 0;
};

}  // namespace traceweaver::serve
