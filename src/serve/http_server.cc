#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "collector/http_parser.h"

namespace traceweaver::serve {
namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string StatusAndHeaders(int status, std::string_view content_type,
                             bool chunked, std::size_t content_length) {
  std::string head = "HTTP/1.1 ";
  head += std::to_string(status);
  head += ' ';
  head += ReasonPhrase(status);
  head += "\r\nContent-Type: ";
  head += content_type;
  if (chunked) {
    head += "\r\nTransfer-Encoding: chunked";
  } else {
    head += "\r\nContent-Length: ";
    head += std::to_string(content_length);
  }
  head += "\r\nConnection: keep-alive\r\n\r\n";
  return head;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexValue(s[i + 1]);
      const int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
      } else {
        out += '%';
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

void ParseTarget(std::string_view target, HttpRequest& request) {
  request.target = std::string(target);
  const std::size_t q = target.find('?');
  request.path = UrlDecode(target.substr(0, q));
  if (q == std::string_view::npos) return;
  std::string_view rest = target.substr(q + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    request.params.emplace_back(
        UrlDecode(pair.substr(0, eq)),
        eq == std::string_view::npos ? std::string()
                                     : UrlDecode(pair.substr(eq + 1)));
  }
}

std::string HttpRequest::Param(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return {};
}

bool HttpRequest::HasParam(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return true;
  }
  return false;
}

bool HttpResponse::WriteAll(std::string_view data) {
  if (!ok_) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      ok_ = false;
      return false;
    }
    off += static_cast<std::size_t>(n);
    bytes_ += static_cast<std::size_t>(n);
  }
  return true;
}

void HttpResponse::Send(int status, std::string_view content_type,
                        std::string_view body) {
  if (sent_) return;
  sent_ = true;
  status_ = status;
  std::string out =
      StatusAndHeaders(status, content_type, /*chunked=*/false, body.size());
  out += body;
  WriteAll(out);
}

void HttpResponse::BeginChunked(int status, std::string_view content_type) {
  if (sent_) return;
  sent_ = true;
  chunked_ = true;
  status_ = status;
  WriteAll(StatusAndHeaders(status, content_type, /*chunked=*/true, 0));
}

void HttpResponse::Chunk(std::string_view data) {
  if (!chunked_ || data.empty()) return;
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string out = size_line;
  out += data;
  out += "\r\n";
  WriteAll(out);
}

void HttpResponse::EndChunked() {
  if (!chunked_) return;
  chunked_ = false;
  WriteAll("0\r\n\r\n");
}

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    connections_ = reg.GetCounter("tw_http_connections_total", "",
                                  "Connections accepted", "1");
    connections_shed_ =
        reg.GetCounter("tw_http_connections_shed_total", "",
                       "Connections closed unserved (worker queue full)",
                       "1");
    parse_errors_ = reg.GetCounter("tw_http_request_parse_errors_total", "",
                                   "Connections dropped on malformed "
                                   "request framing",
                                   "1");
    bytes_sent_ = reg.GetCounter("tw_http_bytes_sent_total", "",
                                 "Response bytes written", "bytes");
    active_connections_ =
        reg.GetGauge("tw_http_active_connections", "",
                     "Connections currently held by workers", "1");
  }
}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(std::string* error) {
  if (running_.load()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) *error = "bad bind address " + options_.bind_address;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) {
      *error = "cannot bind/listen on " + options_.bind_address + ":" +
               std::to_string(options_.port);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const std::size_t workers = std::max<std::size_t>(1, options_.worker_threads);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listen socket unblocks accept(); the queue drains with
  // sentinel wakeups.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : queue_) ::close(fd);
  queue_.clear();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;  // Stop() already closed the socket.
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listen socket closed (Stop) or fatal.
    }
    connections_.Inc();
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= options_.max_queued_connections) {
        connections_shed_.Inc();
        ::close(fd);
        continue;
      }
      queue_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || !running_.load(); });
      if (queue_.empty()) return;  // Stopping.
      fd = queue_.front();
      queue_.pop_front();
    }
    active_connections_.Add(1);
    ServeConnection(fd);
    active_connections_.Add(-1);
  }
}

void HttpServer::ServeConnection(int fd) {
  timeval tv{};
  tv.tv_sec = options_.idle_timeout_ms / 1000;
  tv.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  collector::HttpStreamParser parser;
  char buf[8192];
  bool open = true;
  while (open && running_.load()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Peer closed, timeout, or error.
    parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)), 0);
    if (parser.in_error()) {
      parse_errors_.Inc();
      HttpResponse response(fd);
      response.Send(400, "text/plain", "malformed request\n");
      bytes_sent_.Inc(response.bytes_written());
      break;
    }
    for (const collector::HttpMessage& message : parser.TakeMessages()) {
      HttpRequest request;
      if (!message.is_request) continue;
      request.method = message.method;
      ParseTarget(message.path, request);
      HttpResponse response(fd);
      handler_(request, response);
      if (!response.sent()) {
        response.Send(500, "text/plain", "handler produced no response\n");
      }
      bytes_sent_.Inc(response.bytes_written());
      if (!response.ok_) {
        open = false;
        break;
      }
    }
  }
  ::close(fd);
}

}  // namespace traceweaver::serve
