// Optimization batching with perfect cuts (§4.1 step 2, Theorem A.1).
//
// Incoming spans at a service are sorted by start time (ties by end time).
// A cut between spans i and i+1 is *perfect* when the span j with the
// latest end time among 0..i shares no candidate with span i+1 and j ends
// before i+1 ends: Theorem A.1 then guarantees no span after the cut
// shares a candidate with any span before it. Since a candidate child is
// always nested in its parent's processing window, disjoint windows imply
// no shared candidate -- so we cut when the running latest end time is at
// or before the next span's start. A hard size threshold B forces a cut
// when no perfect boundary appears.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "trace/span.h"

namespace traceweaver {

struct Batch {
  std::size_t begin = 0;  ///< First index (into the sorted span list).
  std::size_t end = 0;    ///< One past the last index.
  /// True when the boundary at `end` is a perfect cut (or the list ended).
  bool perfect = true;

  std::size_t size() const { return end - begin; }
};

/// Aggregate facts about one batching pass, for observability (the caller
/// folds these into the metrics registry; batching itself stays
/// dependency-free).
struct BatchingStats {
  std::size_t batches = 0;
  std::size_t imperfect = 0;    ///< Closed by the size cap, not a cut.
  std::size_t largest = 0;      ///< Largest batch size.
};

/// Splits `parents` (which MUST already be sorted by SpanStartOrder on the
/// callee-side window) into batches. O(M). `stats`, when non-null, is
/// overwritten with this pass's aggregates.
std::vector<Batch> MakeBatches(const std::vector<const Span*>& parents,
                               std::size_t max_batch_size,
                               BatchingStats* stats = nullptr);

}  // namespace traceweaver
