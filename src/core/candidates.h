// Candidate-mapping enumeration, scoring, and gap extraction
// (§4.1 steps 1 and 4).
//
// For an incoming (parent) span with an InvocationPlan, a candidate mapping
// assigns one outgoing (child) span -- or a skip marker, under dynamism --
// to every plan position, subject to the §4.1 feasibility constraints:
//   (i)  every child's request leaves after the parent's request arrived;
//   (ii) every child's response returns before the parent's response left;
//   (iii) with dependency order on, a stage's calls depart only after every
//         call of the previous stage completed.
// Enumeration is a DFS over plan positions with a per-position branch cap
// (children nearest the enabling event first) and a total cap; the
// optimizer then ranks the survivors with DelayModel scores and keeps the
// top K.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "callgraph/call_graph.h"
#include "core/delay_model.h"
#include "trace/span.h"
#include "util/arena.h"

namespace traceweaver {

/// Marker for a skipped plan position inside a candidate mapping.
constexpr SpanId kSkippedChild = kInvalidSpanId;

struct CandidateMapping {
  /// One entry per plan position (InvocationPlan::Positions() order);
  /// kSkippedChild where the position is skipped.
  std::vector<SpanId> children;
  double score = 0.0;
  std::size_t skips = 0;

  bool Complete() const { return skips == 0; }
};

/// Aggregate facts about one enumeration, for observability. Accumulated
/// (not reset) so one instance can span all parents of a container; the
/// caller folds totals into the metrics registry.
struct EnumerationStats {
  std::uint64_t dfs_nodes = 0;       ///< DFS calls made.
  std::uint64_t branch_limited = 0;  ///< Positions that hit the branch cap.
  std::uint64_t total_capped = 0;    ///< Enumerations that hit total_cap.
};

struct EnumerationOptions {
  /// Apply cross-stage sequencing constraints (ablation line 3 disables).
  bool use_order_constraints = true;
  /// Allow skipping *any* position (fuzzy/dynamism mode, §4.2). Optional
  /// positions (BackendCall::optional) are always skippable.
  bool allow_all_skips = false;
  std::size_t branch_cap = 8;
  std::size_t total_cap = 96;
  /// Timing-constraint slack: tolerates capture-clock jitter between the
  /// vantage points of the parent and child records. 0 for exact clocks.
  DurationNs slack = 0;
  /// Optional per-position slack (plan Positions() order) overriding
  /// `slack`, from Parameters::edge_slack_ns resolved per call site. Null
  /// applies the uniform `slack` everywhere.
  const std::vector<DurationNs>* position_slack = nullptr;
  /// Optional per-position forced children (size == plan positions), from
  /// partial instrumentation (§2.2.6): a non-null entry pins that position
  /// to the given span -- no alternatives, no skip -- and TraceWeaver fills
  /// in the gaps around it. Timing feasibility is not re-checked for
  /// pinned children; instrumentation is authoritative.
  const std::vector<const Span*>* forced = nullptr;
  /// Hard thread-affinity pruning (§7 future work): only children whose
  /// sending thread matches the parent's pickup thread are feasible. Only
  /// sound for apps that genuinely follow the vPath threading model; off
  /// by default.
  bool require_thread_match = false;
  /// Precomputed plan positions (plan.Positions()); avoids recomputing the
  /// flattened stage/call list per enumeration when the caller already has
  /// it.
  const std::vector<InvocationPlan::Position>* positions = nullptr;
  /// When set, each emitted mapping also appends its resolved child
  /// pointers (nullptr for skips) here, positions-count entries per
  /// mapping. The DFS already holds the Span pointers, so this spares the
  /// caller an id -> span lookup pass over every candidate.
  std::vector<const Span*>* resolved_out = nullptr;
  /// When set, enumeration work counters are accumulated here.
  EnumerationStats* stats = nullptr;
  /// When set, DFS scratch (the current-mapping stacks and the used-child
  /// set) allocates from this arena instead of the heap. The caller owns
  /// the arena and may Reset() it between enumerations; results are
  /// bit-identical either way. Null uses a small enumeration-local arena.
  ArenaAllocator* scratch = nullptr;
};

/// Pools of available children, one per plan position, each sorted by
/// client_send (SpanClientSendOrder). Pools may be shared across positions
/// with the same (service, endpoint); enumeration never reuses a span.
using PositionPools = std::vector<const std::vector<const Span*>*>;

/// Enumerates feasible candidate mappings for `parent` (unscored).
std::vector<CandidateMapping> EnumerateCandidates(
    const Span& parent, const InvocationPlan& plan,
    const PositionPools& pools, const EnumerationOptions& options);

struct ScoringContext {
  const DelayModel* model = nullptr;
  /// Fallback log P(position skipped) when no per-backend rate is known.
  double skip_log_prob = -6.0;
  /// Fallback log P(position present).
  double keep_log_prob = 0.0;
  /// Score timing gaps against the stage-enabling event (dependency order
  /// on) or uniformly against the parent arrival (ablation).
  bool use_order_constraints = true;
  /// Per-backend skip rates keyed by (service, endpoint), estimated from
  /// incoming/outgoing discrepancies (§4.2); overrides the fallbacks.
  const std::map<std::pair<std::string, std::string>, double>* skip_rates =
      nullptr;
  /// Extra log-penalty applied to skips on top of log(rate). Timing terms
  /// are mode-normalized likelihood ratios (<= 0), so this margin sets how
  /// atypical a feasible child's timing must be before skipping scores
  /// higher: with the default, fills within ~1.5 log-likelihood units of
  /// the distribution peak beat a skip.
  double skip_margin = -1.5;
  /// Soft thread-affinity hint (§7 future work): log-score bonus added per
  /// child whose sending thread matches the parent's pickup thread. 0
  /// disables. Unlike the hard mode this only nudges ranking, so it stays
  /// safe when the threading model is only sometimes informative.
  double thread_match_bonus = 0.0;
  /// Known capture-sampling keep probability (Parameters::sampling_rate).
  /// Applied to the *fallback* skip/keep terms only (AdjustForSampling):
  /// water-filled rates already absorb sampling through the observed
  /// discrepancy budget, so adjusting them too would double-count. 1.0
  /// (default) is a no-op.
  double sampling_rate = 1.0;

  // ------- precomputed hot path (optimizer-internal) -------
  // Scoring one candidate is the innermost loop of the pipeline; resolving
  // a DelayKey (two string copies + map lookup) and a skip-rate map lookup
  // per position per candidate dominates it. The optimizer precomputes
  // both per (task, batch) -- they are identical for every candidate of a
  // task -- and ScoreMapping reads the table instead. Scores are bitwise
  // identical to the lookup path.

  /// One entry per plan position (InvocationPlan::Positions() order).
  struct PositionScore {
    double skip_lp = -6.0;  ///< log P(position skipped), margin excluded.
    double keep_lp = 0.0;   ///< log P(position present).
    const GaussianMixture* dist = nullptr;  ///< null: fallback Gaussian.
    double max_log_pdf = 0.0;               ///< Peak log-density of `dist`.
  };
  /// When set, overrides `model`/`skip_rates` lookups entirely.
  const std::vector<PositionScore>* position_scores = nullptr;
  /// Response-gap distribution, valid when `position_scores` is set.
  const GaussianMixture* response_dist = nullptr;  ///< null: fallback.
  double response_max_log_pdf = 0.0;
  /// Flattened plan positions, reused across candidates (avoids one vector
  /// allocation per ScoreMapping call). Optional independently of the
  /// table.
  const std::vector<InvocationPlan::Position>* positions = nullptr;
};

/// Folds a known sampling keep-probability `rate` into discrete skip/keep
/// log-probabilities: a position looks absent when it was truly skipped
/// OR its span was sampled out, so with prior skip mass s = exp(skip_lp),
///   skip_lp' = log(s + (1 - s) * (1 - rate)),
///   keep_lp' = keep_lp + log(rate).
/// No-op (arguments untouched) when rate >= 1.0, preserving bit-identity
/// for unsampled streams.
void AdjustForSampling(double rate, double& skip_lp, double& keep_lp);

/// Scores one candidate mapping for `parent`: sum of per-position delay
/// log-densities plus the response-gap term and skip penalties. Needs the
/// actual Span objects; `lookup` resolves span ids from the pools.
double ScoreMapping(const Span& parent, const InvocationPlan& plan,
                    const std::vector<const Span*>& resolved_children,
                    const ScoringContext& ctx);

/// Pointer flavour for callers holding resolved children in a flat buffer
/// (one slot per plan position); identical scoring. Named distinctly so a
/// braced-init argument ({...}) can never silently select the raw-pointer
/// signature over the vector one.
double ScoreMappingFlat(const Span& parent, const InvocationPlan& plan,
                        const Span* const* resolved_children,
                        const ScoringContext& ctx);

/// Structure-of-arrays view of one task's enumerated candidates: the
/// timing gaps and discrete flags ScoreMapping derives from the resolved
/// child spans, extracted once per task. Gaps depend only on the parent,
/// the plan and the candidate's own children -- never on the delay model --
/// so the table is built once after enumeration and reused across every
/// ranking iteration, and ScoreCandidatesBatch can evaluate one position's
/// gap column with a single batched LogPdf call.
///
/// Layout is column-major by position: slot [pos * num_candidates + cand].
struct CandidateGapTable {
  std::size_t num_candidates = 0;
  std::size_t num_positions = 0;
  /// Gap (child client_send - enabling event) per slot; 0.0 where skipped.
  std::vector<double> gaps;
  /// 1 where the slot holds a real child, 0 where skipped.
  std::vector<std::uint8_t> filled;
  /// 1 where the child's sending thread matches the parent's pickup thread.
  std::vector<std::uint8_t> thread_match;
  /// Response gap per candidate (last child completion -> parent response
  /// departure); 0.0 for all-skip candidates.
  std::vector<double> response_gap;
  /// 1 when the candidate fills at least one position.
  std::vector<std::uint8_t> any_child;
};

/// Builds the gap table for `num_candidates` mappings whose resolved
/// children live in `resolved`, flat [cand * positions.size() + pos]
/// (ParentTask layout). Gap arithmetic is integer until the final cast,
/// identical to ScoreMapping's.
CandidateGapTable BuildGapTable(
    const Span& parent,
    const std::vector<InvocationPlan::Position>& positions,
    const Span* const* resolved, std::size_t num_candidates,
    bool use_order_constraints);

/// Scores every candidate of one task in one pass: per position, one
/// batched LogPdf over the gap column, then per-candidate accumulation in
/// exactly ScoreMappingFlat's term order -- scores are bitwise identical
/// to calling ScoreMappingFlat per candidate. Requires
/// ctx.position_scores (the optimizer's precomputed table). `scores` must
/// hold num_candidates slots; `scratch` at least num_candidates doubles.
void ScoreCandidatesBatch(const CandidateGapTable& table,
                          const ScoringContext& ctx,
                          std::span<double> scores,
                          std::span<double> scratch);

/// Per-position score decomposition of one candidate mapping, for the
/// `explain` drill-down. Each row mirrors exactly one additive term of
/// ScoreMapping, so the row sums (plus the response term) reproduce the
/// ranked score bit-for-bit.
struct ScoreBreakdown {
  struct Position {
    std::size_t stage = 0;
    std::size_t call = 0;
    std::string service;   ///< Backend the plan position calls.
    std::string endpoint;
    SpanId child = kSkippedChild;  ///< kSkippedChild when the position skips.
    bool skipped = true;
    double gap_ns = 0.0;    ///< Child send - enabling event (filled only).
    double timing_lp = 0.0; ///< Mode-normalized delay log-pdf (filled only).
    double discrete_lp = 0.0;  ///< skip_lp + margin, or keep_lp.
    double thread_bonus = 0.0;
  };
  std::vector<Position> positions;
  bool has_response = false;  ///< At least one position was filled.
  double response_gap_ns = 0.0;
  double response_lp = 0.0;
  double total = 0.0;  ///< Sum of every term; equals ScoreMapping's result.
};

/// Recomputes one candidate's score with every additive term recorded.
/// Cold path (explain drill-down only); given the same ScoringContext the
/// `total` is bitwise identical to ScoreMapping.
ScoreBreakdown ExplainMapping(const Span& parent, const InvocationPlan& plan,
                              const std::vector<const Span*>& resolved_children,
                              const ScoringContext& ctx);

/// A (delay key, observed gap) pair extracted from an accepted mapping;
/// the refit input for the next iteration (§4.1 step 6).
struct GapSample {
  DelayKey key;
  double gap = 0.0;
};

/// Extracts all gap samples implied by an accepted mapping.
std::vector<GapSample> ExtractGaps(
    const Span& parent, const InvocationPlan& plan,
    const std::vector<const Span*>& resolved_children,
    bool use_order_constraints);

}  // namespace traceweaver
