#include "core/candidates.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace traceweaver {
namespace {

template <typename T>
using ArenaVec = std::vector<T, ArenaStlAllocator<T>>;
using ArenaIdSet =
    std::unordered_set<SpanId, std::hash<SpanId>, std::equal_to<SpanId>,
                       ArenaStlAllocator<SpanId>>;

struct DfsState {
  const Span* parent = nullptr;
  const InvocationPlan* plan = nullptr;
  const PositionPools* pools = nullptr;
  const EnumerationOptions* options = nullptr;
  const std::vector<InvocationPlan::Position>* positions = nullptr;

  // Per-enumeration scratch, arena-backed: these stacks live only for the
  // DFS and are bounded by the plan depth, so they bump-allocate from the
  // caller's (or a small local) arena instead of the heap.
  ArenaVec<SpanId> current;
  ArenaVec<const Span*> current_spans;
  ArenaIdSet used;
  std::size_t skips = 0;
  std::vector<CandidateMapping>* results = nullptr;
  EnumerationStats stats;

  explicit DfsState(ArenaAllocator* arena)
      : current(ArenaStlAllocator<SpanId>(arena)),
        current_spans(ArenaStlAllocator<const Span*>(arena)),
        used(0, std::hash<SpanId>(), std::equal_to<SpanId>(),
             ArenaStlAllocator<SpanId>(arena)) {}
};

/// DFS over plan positions. `stage_lb` is the earliest time a call in the
/// current stage may depart (enabling-event time); `max_recv` is the latest
/// child completion seen across all previous positions.
void Dfs(DfsState& state, std::size_t pos_idx, TimeNs stage_lb,
         TimeNs max_recv) {
  if (state.results->size() >= state.options->total_cap) return;
  ++state.stats.dfs_nodes;
  if (pos_idx == state.positions->size()) {
    CandidateMapping m;
    m.children.assign(state.current.begin(), state.current.end());
    m.skips = state.skips;
    state.results->push_back(std::move(m));
    if (state.options->resolved_out != nullptr) {
      state.options->resolved_out->insert(state.options->resolved_out->end(),
                                          state.current_spans.begin(),
                                          state.current_spans.end());
    }
    return;
  }

  const auto& pos = (*state.positions)[pos_idx];
  // Entering a new stage: with dependency order on, its calls may only
  // depart after every previous stage's call has completed.
  if (state.options->use_order_constraints && pos.call == 0 && pos_idx > 0) {
    stage_lb = std::max(stage_lb, max_recv);
  }
  const TimeNs lb = state.options->use_order_constraints
                        ? stage_lb
                        : state.parent->server_recv;

  // Pinned position (partial instrumentation): take the known child and
  // move on -- no alternatives, no skip.
  if (state.options->forced != nullptr &&
      (*state.options->forced)[pos_idx] != nullptr) {
    const Span* child = (*state.options->forced)[pos_idx];
    state.current.push_back(child->id);
    state.current_spans.push_back(child);
    Dfs(state, pos_idx + 1, stage_lb,
        std::max(max_recv, child->client_recv));
    state.current_spans.pop_back();
    state.current.pop_back();
    return;
  }

  const std::vector<const Span*>& pool = *(*state.pools)[pos_idx];
  const DurationNs slack = state.options->position_slack != nullptr
                               ? (*state.options->position_slack)[pos_idx]
                               : state.options->slack;
  // Children with client_send in [lb - slack, parent.server_send + slack];
  // nearest first.
  const auto first = std::lower_bound(
      pool.begin(), pool.end(), lb - slack, [](const Span* s, TimeNs t) {
        return s->client_send < t;
      });
  std::size_t branched = 0;
  for (auto it = first; it != pool.end(); ++it) {
    const Span* child = *it;
    if (child->client_send > state.parent->server_send + slack) break;
    if (child->client_recv > state.parent->server_send + slack) continue;
    if (state.options->require_thread_match &&
        child->caller_thread != state.parent->handler_thread) {
      continue;
    }
    if (state.used.count(child->id) > 0) continue;
    if (branched >= state.options->branch_cap) {
      ++state.stats.branch_limited;
      break;
    }
    ++branched;

    state.current.push_back(child->id);
    state.current_spans.push_back(child);
    state.used.insert(child->id);
    Dfs(state, pos_idx + 1, stage_lb,
        std::max(max_recv, child->client_recv));
    state.used.erase(child->id);
    state.current_spans.pop_back();
    state.current.pop_back();
    if (state.results->size() >= state.options->total_cap) return;
  }

  // Skip branch (after the real candidates, so complete mappings are
  // explored first).
  const BackendCall& call = state.plan->At(pos);
  if (call.optional || state.options->allow_all_skips) {
    state.current.push_back(kSkippedChild);
    state.current_spans.push_back(nullptr);
    ++state.skips;
    Dfs(state, pos_idx + 1, stage_lb, max_recv);
    --state.skips;
    state.current_spans.pop_back();
    state.current.pop_back();
  }
}

}  // namespace

void AdjustForSampling(double rate, double& skip_lp, double& keep_lp) {
  if (rate >= 1.0) return;  // Bit-identical no-op for unsampled streams.
  const double r = std::max(rate, 1e-4);
  const double s = std::exp(skip_lp);
  skip_lp = std::log(s + (1.0 - s) * (1.0 - r));
  keep_lp += std::log(r);
}

std::vector<CandidateMapping> EnumerateCandidates(
    const Span& parent, const InvocationPlan& plan,
    const PositionPools& pools, const EnumerationOptions& options) {
  std::vector<CandidateMapping> results;
  // Stand-alone callers (tests, cold paths) get a small local arena; the
  // optimizer passes a per-worker arena it resets between tasks.
  ArenaAllocator local(4 * 1024);
  ArenaAllocator* arena =
      options.scratch != nullptr ? options.scratch : &local;
  std::vector<InvocationPlan::Position> own_positions;
  if (options.positions == nullptr) own_positions = plan.Positions();
  DfsState state(arena);
  state.parent = &parent;
  state.plan = &plan;
  state.pools = &pools;
  state.options = &options;
  state.positions =
      options.positions != nullptr ? options.positions : &own_positions;
  state.results = &results;
  Dfs(state, 0, parent.server_recv, parent.server_recv);
  if (options.stats != nullptr) {
    options.stats->dfs_nodes += state.stats.dfs_nodes;
    options.stats->branch_limited += state.stats.branch_limited;
    if (results.size() >= options.total_cap) ++options.stats->total_capped;
  }
  return results;
}

double ScoreMapping(const Span& parent, const InvocationPlan& plan,
                    const std::vector<const Span*>& resolved_children,
                    const ScoringContext& ctx) {
  return ScoreMappingFlat(parent, plan, resolved_children.data(), ctx);
}

double ScoreMappingFlat(const Span& parent, const InvocationPlan& plan,
                        const Span* const* resolved_children,
                        const ScoringContext& ctx) {
  std::vector<InvocationPlan::Position> flat;
  if (ctx.positions == nullptr) flat = plan.Positions();
  const std::vector<InvocationPlan::Position>& positions =
      ctx.positions != nullptr ? *ctx.positions : flat;
  double score = 0.0;

  TimeNs stage_lb = parent.server_recv;
  TimeNs max_recv = parent.server_recv;
  std::size_t prev_stage = 0;
  bool any_child = false;

  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (ctx.use_order_constraints && positions[i].stage != prev_stage) {
      stage_lb = std::max(stage_lb, max_recv);
      prev_stage = positions[i].stage;
    }
    double skip_lp;
    double keep_lp;
    const ScoringContext::PositionScore* ps = nullptr;
    if (ctx.position_scores != nullptr) {
      ps = &(*ctx.position_scores)[i];
      skip_lp = ps->skip_lp;
      keep_lp = ps->keep_lp;
    } else {
      skip_lp = ctx.skip_log_prob;
      keep_lp = ctx.keep_log_prob;
      bool known = false;
      if (ctx.skip_rates != nullptr) {
        const BackendCall& call = plan.At(positions[i]);
        auto it = ctx.skip_rates->find({call.service, call.endpoint});
        if (it != ctx.skip_rates->end()) {
          const double rate = std::clamp(it->second, 1e-4, 1.0 - 1e-4);
          skip_lp = std::log(rate);
          keep_lp = std::log(1.0 - rate);
          known = true;
        }
      }
      // Known rates already absorb sampling through the observed
      // discrepancy budget; only the defaults need re-deriving.
      if (!known) AdjustForSampling(ctx.sampling_rate, skip_lp, keep_lp);
    }
    const Span* child = resolved_children[i];
    if (child == nullptr) {
      score += skip_lp + ctx.skip_margin;
      continue;
    }
    score += keep_lp;
    if (ctx.thread_match_bonus > 0.0 &&
        child->caller_thread == parent.handler_thread) {
      score += ctx.thread_match_bonus;
    }
    const TimeNs trigger =
        ctx.use_order_constraints ? stage_lb : parent.server_recv;
    const double gap = static_cast<double>(child->client_send - trigger);
    // Mode-normalized log-likelihood ratio: unit-free, <= 0, directly
    // comparable with the discrete skip log-probabilities above.
    if (ps != nullptr) {
      const double lp = ps->dist != nullptr ? ps->dist->LogPdf(gap)
                                            : DelayModel::FallbackLogPdf(gap);
      score += lp - ps->max_log_pdf;
    } else {
      const DelayKey key{parent.callee, parent.endpoint,
                         static_cast<int>(positions[i].stage),
                         static_cast<int>(positions[i].call)};
      score += ctx.model->LogScore(key, gap) - ctx.model->MaxLogScore(key);
    }
    max_recv = std::max(max_recv, child->client_recv);
    any_child = true;
  }

  // Response-gap term: last child completion -> parent response departure.
  if (any_child) {
    const double gap = static_cast<double>(parent.server_send - max_recv);
    if (ctx.position_scores != nullptr) {
      const double lp = ctx.response_dist != nullptr
                            ? ctx.response_dist->LogPdf(gap)
                            : DelayModel::FallbackLogPdf(gap);
      score += lp - ctx.response_max_log_pdf;
    } else {
      const DelayKey rkey =
          DelayKey::ResponseGap(parent.callee, parent.endpoint);
      score += ctx.model->LogScore(rkey, gap) - ctx.model->MaxLogScore(rkey);
    }
  }
  return score;
}

CandidateGapTable BuildGapTable(
    const Span& parent,
    const std::vector<InvocationPlan::Position>& positions,
    const Span* const* resolved, std::size_t num_candidates,
    bool use_order_constraints) {
  CandidateGapTable t;
  const std::size_t np = positions.size();
  t.num_candidates = num_candidates;
  t.num_positions = np;
  t.gaps.assign(np * num_candidates, 0.0);
  t.filled.assign(np * num_candidates, 0);
  t.thread_match.assign(np * num_candidates, 0);
  t.response_gap.assign(num_candidates, 0.0);
  t.any_child.assign(num_candidates, 0);

  for (std::size_t c = 0; c < num_candidates; ++c) {
    const Span* const* children = resolved + c * np;
    // The stage_lb / max_recv walk is ScoreMappingFlat's, on integer
    // timestamps throughout -- the extracted gaps are exact.
    TimeNs stage_lb = parent.server_recv;
    TimeNs max_recv = parent.server_recv;
    std::size_t prev_stage = 0;
    bool any_child = false;
    for (std::size_t i = 0; i < np; ++i) {
      if (use_order_constraints && positions[i].stage != prev_stage) {
        stage_lb = std::max(stage_lb, max_recv);
        prev_stage = positions[i].stage;
      }
      const Span* child = children[i];
      if (child == nullptr) continue;
      const std::size_t slot = i * num_candidates + c;
      t.filled[slot] = 1;
      if (child->caller_thread == parent.handler_thread) {
        t.thread_match[slot] = 1;
      }
      const TimeNs trigger =
          use_order_constraints ? stage_lb : parent.server_recv;
      t.gaps[slot] = static_cast<double>(child->client_send - trigger);
      max_recv = std::max(max_recv, child->client_recv);
      any_child = true;
    }
    if (any_child) {
      t.any_child[c] = 1;
      t.response_gap[c] =
          static_cast<double>(parent.server_send - max_recv);
    }
  }
  return t;
}

void ScoreCandidatesBatch(const CandidateGapTable& table,
                          const ScoringContext& ctx,
                          std::span<double> scores,
                          std::span<double> scratch) {
  const std::size_t nc = table.num_candidates;
  const std::size_t np = table.num_positions;
  double* lp = scratch.data();
  for (std::size_t c = 0; c < nc; ++c) scores[c] = 0.0;

  const bool bonus_on = ctx.thread_match_bonus > 0.0;
  for (std::size_t i = 0; i < np; ++i) {
    const ScoringContext::PositionScore& ps = (*ctx.position_scores)[i];
    const double* gcol = table.gaps.data() + i * nc;
    // One batched evaluation per position column; skipped slots carry a
    // 0.0 gap whose density is computed but never accumulated.
    if (ps.dist != nullptr) {
      ps.dist->LogPdfBatch({gcol, nc}, {lp, nc});
    } else {
      DelayModel::FallbackLogPdfBatch({gcol, nc}, {lp, nc});
    }
    const std::uint8_t* fl = table.filled.data() + i * nc;
    const std::uint8_t* tm = table.thread_match.data() + i * nc;
    // Accumulation mirrors ScoreMappingFlat's adds term by term (skip sum,
    // keep, bonus, normalized timing), so per-candidate totals are
    // bitwise identical.
    const double skip_term = ps.skip_lp + ctx.skip_margin;
    for (std::size_t c = 0; c < nc; ++c) {
      if (fl[c] == 0) {
        scores[c] += skip_term;
        continue;
      }
      scores[c] += ps.keep_lp;
      if (bonus_on && tm[c] != 0) scores[c] += ctx.thread_match_bonus;
      scores[c] += lp[c] - ps.max_log_pdf;
    }
  }

  if (ctx.response_dist != nullptr) {
    ctx.response_dist->LogPdfBatch({table.response_gap.data(), nc},
                                   {lp, nc});
  } else {
    DelayModel::FallbackLogPdfBatch({table.response_gap.data(), nc},
                                    {lp, nc});
  }
  for (std::size_t c = 0; c < nc; ++c) {
    if (table.any_child[c] != 0) {
      scores[c] += lp[c] - ctx.response_max_log_pdf;
    }
  }
}

ScoreBreakdown ExplainMapping(const Span& parent, const InvocationPlan& plan,
                              const std::vector<const Span*>& resolved_children,
                              const ScoringContext& ctx) {
  // Mirrors ScoreMappingFlat term by term; `total` accumulates in the same
  // order so the result is bitwise identical to the ranked score.
  ScoreBreakdown out;
  std::vector<InvocationPlan::Position> flat;
  if (ctx.positions == nullptr) flat = plan.Positions();
  const std::vector<InvocationPlan::Position>& positions =
      ctx.positions != nullptr ? *ctx.positions : flat;
  double score = 0.0;

  TimeNs stage_lb = parent.server_recv;
  TimeNs max_recv = parent.server_recv;
  std::size_t prev_stage = 0;
  bool any_child = false;

  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (ctx.use_order_constraints && positions[i].stage != prev_stage) {
      stage_lb = std::max(stage_lb, max_recv);
      prev_stage = positions[i].stage;
    }
    double skip_lp;
    double keep_lp;
    const ScoringContext::PositionScore* ps = nullptr;
    if (ctx.position_scores != nullptr) {
      ps = &(*ctx.position_scores)[i];
      skip_lp = ps->skip_lp;
      keep_lp = ps->keep_lp;
    } else {
      skip_lp = ctx.skip_log_prob;
      keep_lp = ctx.keep_log_prob;
      bool known = false;
      if (ctx.skip_rates != nullptr) {
        const BackendCall& bc = plan.At(positions[i]);
        auto it = ctx.skip_rates->find({bc.service, bc.endpoint});
        if (it != ctx.skip_rates->end()) {
          const double rate = std::clamp(it->second, 1e-4, 1.0 - 1e-4);
          skip_lp = std::log(rate);
          keep_lp = std::log(1.0 - rate);
          known = true;
        }
      }
      if (!known) AdjustForSampling(ctx.sampling_rate, skip_lp, keep_lp);
    }
    const BackendCall& call = plan.At(positions[i]);
    ScoreBreakdown::Position row;
    row.stage = positions[i].stage;
    row.call = positions[i].call;
    row.service = call.service;
    row.endpoint = call.endpoint;

    const Span* child = resolved_children[i];
    if (child == nullptr) {
      row.discrete_lp = skip_lp + ctx.skip_margin;
      score += row.discrete_lp;
      out.positions.push_back(std::move(row));
      continue;
    }
    row.skipped = false;
    row.child = child->id;
    row.discrete_lp = keep_lp;
    score += keep_lp;
    if (ctx.thread_match_bonus > 0.0 &&
        child->caller_thread == parent.handler_thread) {
      row.thread_bonus = ctx.thread_match_bonus;
      score += ctx.thread_match_bonus;
    }
    const TimeNs trigger =
        ctx.use_order_constraints ? stage_lb : parent.server_recv;
    const double gap = static_cast<double>(child->client_send - trigger);
    row.gap_ns = gap;
    if (ps != nullptr) {
      const double lp = ps->dist != nullptr ? ps->dist->LogPdf(gap)
                                            : DelayModel::FallbackLogPdf(gap);
      row.timing_lp = lp - ps->max_log_pdf;
    } else {
      const DelayKey key{parent.callee, parent.endpoint,
                         static_cast<int>(positions[i].stage),
                         static_cast<int>(positions[i].call)};
      row.timing_lp = ctx.model->LogScore(key, gap) - ctx.model->MaxLogScore(key);
    }
    score += row.timing_lp;
    max_recv = std::max(max_recv, child->client_recv);
    any_child = true;
    out.positions.push_back(std::move(row));
  }

  if (any_child) {
    out.has_response = true;
    const double gap = static_cast<double>(parent.server_send - max_recv);
    out.response_gap_ns = gap;
    if (ctx.position_scores != nullptr) {
      const double lp = ctx.response_dist != nullptr
                            ? ctx.response_dist->LogPdf(gap)
                            : DelayModel::FallbackLogPdf(gap);
      out.response_lp = lp - ctx.response_max_log_pdf;
    } else {
      const DelayKey rkey =
          DelayKey::ResponseGap(parent.callee, parent.endpoint);
      out.response_lp =
          ctx.model->LogScore(rkey, gap) - ctx.model->MaxLogScore(rkey);
    }
    score += out.response_lp;
  }
  out.total = score;
  return out;
}

std::vector<GapSample> ExtractGaps(
    const Span& parent, const InvocationPlan& plan,
    const std::vector<const Span*>& resolved_children,
    bool use_order_constraints) {
  const auto positions = plan.Positions();
  std::vector<GapSample> samples;
  samples.reserve(positions.size() + 1);

  TimeNs stage_lb = parent.server_recv;
  TimeNs max_recv = parent.server_recv;
  std::size_t prev_stage = 0;
  bool any_child = false;

  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (use_order_constraints && positions[i].stage != prev_stage) {
      stage_lb = std::max(stage_lb, max_recv);
      prev_stage = positions[i].stage;
    }
    const Span* child = resolved_children[i];
    if (child == nullptr) continue;
    const TimeNs trigger =
        use_order_constraints ? stage_lb : parent.server_recv;
    samples.push_back(GapSample{
        DelayKey{parent.callee, parent.endpoint,
                 static_cast<int>(positions[i].stage),
                 static_cast<int>(positions[i].call)},
        static_cast<double>(child->client_send - trigger)});
    max_recv = std::max(max_recv, child->client_recv);
    any_child = true;
  }
  if (any_child) {
    samples.push_back(GapSample{
        DelayKey::ResponseGap(parent.callee, parent.endpoint),
        static_cast<double>(parent.server_send - max_recv)});
  }
  return samples;
}

}  // namespace traceweaver
