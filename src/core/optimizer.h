// The per-container optimization pipeline (§4.1 steps 1-6, §4.2).
//
// For one service container, the optimizer:
//   1. enumerates feasible candidate mappings per incoming span,
//   2. splits incoming spans into batches at perfect cuts,
//   3. builds delay distributions (seed Gaussians, later GMMs; WAP5-seeded
//      under dynamism),
//   4. ranks candidates with the distributions,
//   5. solves each batch's conflict graph as max-weight independent set,
//   6. iterates 3-5 with the inferred mappings refining the distributions.
// Skip-span budgets for dynamism are sized from per-backend discrepancies
// and spread across batches by water-filling (§4.2).
//
// The ablation toggles in OptimizerOptions correspond to Fig. 5's lines:
// dependency-order constraints, iteration, and joint (batched) optimization
// can each be disabled independently.
#pragma once

#include <cstddef>
#include <vector>

#include "callgraph/call_graph.h"
#include "core/candidates.h"
#include "core/parameters.h"
#include "stats/gmm.h"
#include "trace/trace.h"
#include "trace/trace_store.h"

namespace traceweaver::obs {
struct PipelineMetrics;  // obs/pipeline_metrics.h
}

namespace traceweaver {

class ThreadPool;
struct ExplainCapture;  // core/explain.h

struct OptimizerOptions {
  Parameters params;

  /// Worker pool shared across the pipeline stages (per-task enumeration
  /// and ranking, per-run batch solving, per-key GMM refits). Not owned;
  /// must outlive the optimization. Null runs every stage serially.
  /// Output is bit-identical for any pool size (see DESIGN.md,
  /// "Concurrency model").
  ThreadPool* pool = nullptr;

  /// Ablation toggles (Fig. 5).
  bool use_order_constraints = true;  ///< Line 3: invocation-order pruning.
  bool iterate = true;                ///< Line 4: GMM refinement iterations.
  bool use_joint_optimization = true; ///< Line 5: batched MIS vs greedy.

  /// Enable §4.2 skip-span handling when discrepancies are observed.
  bool enable_dynamism = true;

  /// Fast single-thread data path: structure-of-arrays pool columns for
  /// the window scans, per-task candidate gap tables scored with batched
  /// LogPdf calls, and per-worker arena-backed enumeration scratch.
  /// Assignments, ranked scores and quality grades are bit-identical with
  /// the toggle on or off -- the batch path accumulates every score in
  /// exactly ScoreMappingFlat's floating-point order (see DESIGN.md §4g).
  /// Off exists for A/B verification and as a debugging fallback.
  bool fast_data_path = true;

  /// Thread-affinity hints (§7 future work). kSoft adds a ranking bonus to
  /// children sent from the parent's pickup thread; kHard prunes all other
  /// children (only sound under the vPath threading model).
  enum class ThreadAffinity { kIgnore, kSoft, kHard };
  ThreadAffinity thread_affinity = ThreadAffinity::kIgnore;
  /// Log-score bonus used by kSoft.
  double thread_match_bonus = 1.5;

  /// Known child->parent links from partially instrumented services
  /// (§2.2.6). Pinned children are withheld from every other parent's
  /// candidate pools and their positions are fixed during enumeration;
  /// TraceWeaver reconstructs only the gaps. Not owned; must outlive the
  /// optimization.
  const ParentAssignment* pinned = nullptr;

  GmmFitOptions gmm;

  /// Observability sink: pre-registered metric handles the pipeline
  /// records into (counts, stage timings, histograms). Null disables
  /// recording; reconstruction output is bit-identical either way --
  /// instrumentation only observes. Not owned; must outlive the
  /// optimization. Handles are thread-safe, so one bundle serves all
  /// concurrently optimized containers.
  const obs::PipelineMetrics* metrics = nullptr;

  /// Collect per-batch quality statistics (ContainerResult::batch_stats):
  /// the MWIS objective of the final solution next to the greedy
  /// heuristic's, feeding the trace-quality subsystem (obs/quality.h).
  /// Observation only -- the extra greedy solve never touches the chosen
  /// assignment, so output stays bit-identical either way.
  bool collect_quality = false;

  /// When set, the container owning this incoming span fills `explain_out`
  /// with its candidate table (per-position score decompositions against
  /// the final delay model, ranks, MWIS conflict neighbors) at the end of
  /// the optimization. Cold path; reconstruction output is unaffected.
  SpanId explain_parent = kInvalidSpanId;
  ExplainCapture* explain_out = nullptr;  ///< Not owned; may be null.
};

/// Reconstruction output for one incoming span.
struct ParentResult {
  SpanId parent = kInvalidSpanId;
  /// Ranked candidate mappings, best first (top K).
  std::vector<CandidateMapping> ranked;
  /// Index into `ranked` of the mapping the joint optimization selected;
  /// -1 if the span could not be mapped.
  int chosen = -1;
  /// Total feasible candidates enumerated (before the top-K cut); the
  /// ambiguity denominator of the quality layer.
  std::size_t candidates_considered = 0;
  /// Index of the batch (within the container) this span was solved in.
  std::size_t batch = 0;

  bool Mapped() const { return chosen >= 0; }
  /// True when the selected mapping was also the top-ranked one (input to
  /// the §6.3.2 confidence score).
  bool ChoseTop() const { return chosen == 0; }
};

struct ContainerResult {
  ServiceInstance instance;
  /// One entry per incoming span that has a non-empty plan.
  std::vector<ParentResult> parents;
  /// Incoming spans that are leaves (no backend calls) -- trivially done.
  std::size_t leaf_parents = 0;
  std::size_t batches = 0;
  std::size_t imperfect_batches = 0;
  std::size_t mis_fallbacks = 0;  ///< Batches where B&B hit its budget.

  /// Per-batch solve quality, filled only when
  /// OptimizerOptions::collect_quality is on (one entry per batch, final
  /// iteration). The greedy objective lower-bounds the exact one; their
  /// gap signals how contested the batch's joint optimization was.
  struct BatchStats {
    double chosen_weight = 0.0;  ///< MWIS objective of the final solution.
    double greedy_weight = 0.0;  ///< Greedy weight/(degree+1) + 1-swap.
    bool optimal = true;   ///< B&B completed within its node budget.
    bool joint = true;     ///< False on the greedy-ablation path.
    bool solved = false;   ///< A solve ran (batch had live vertices).
  };
  std::vector<BatchStats> batch_stats;

  /// Duplicate-twin adoptions (child id -> parent id), sorted by child:
  /// unassigned spans folded onto the parent of an assigned same-pool
  /// sibling within Parameters::duplicate_twin_window_ns (retry/hedge
  /// duplicates racing one plan position). Empty when the window is 0.
  std::vector<std::pair<SpanId, SpanId>> adopted;

  /// Merges the chosen mappings (and twin adoptions) into `out`
  /// (child id -> parent id).
  void AppendAssignment(ParentAssignment& out) const;
};

/// Runs the full pipeline for one container view.
ContainerResult OptimizeContainer(const ContainerView& view,
                                  const CallGraph& graph,
                                  const OptimizerOptions& options);

}  // namespace traceweaver
