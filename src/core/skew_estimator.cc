#include "core/skew_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "trace/checkpoint.h"

namespace traceweaver {
namespace {

/// Inserts `gap` into the ascending k-smallest buffer, evicting the
/// largest element on overflow.
void InsertGap(std::vector<std::int64_t>& buffer, std::int64_t gap) {
  const auto at = std::lower_bound(buffer.begin(), buffer.end(), gap);
  if (at == buffer.end() && buffer.size() >= PairSkewStats::kGapBuffer) {
    return;
  }
  buffer.insert(at, gap);
  if (buffer.size() > PairSkewStats::kGapBuffer) buffer.pop_back();
}

/// Index-quantile floor: the smallest gap, stepping one buffer slot
/// deeper per kSamplesPerSkip observations so isolated garbled records
/// stop defining the minimum once the population is large.
std::int64_t Floor(const std::vector<std::int64_t>& buffer,
                   std::uint64_t samples) {
  if (buffer.empty()) return 0;
  const std::size_t skip = static_cast<std::size_t>(
      samples / PairSkewStats::kSamplesPerSkip);
  return buffer[std::min(skip, buffer.size() - 1)];
}

/// %.17g round-trips IEEE doubles exactly (same convention as the online
/// checkpoint's posterior records).
std::string FmtF64(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JoinGaps(const std::vector<std::int64_t>& gaps) {
  std::string out;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(gaps[i]);
  }
  return out;
}

bool ParseGaps(const std::string& joined, std::vector<std::int64_t>* out) {
  out->clear();
  if (joined.empty()) return true;
  const char* p = joined.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long long v = std::strtoll(p, &end, 10);
    if (end == p) return false;
    out->push_back(v);
    if (*end == ',') {
      p = end + 1;
    } else if (*end == '\0') {
      break;
    } else {
      return false;
    }
  }
  return out->size() <= PairSkewStats::kGapBuffer &&
         std::is_sorted(out->begin(), out->end());
}

}  // namespace

void PairSkewStats::Observe(std::int64_t request_gap_ns,
                            std::int64_t response_gap_ns) {
  ++samples;
  if (request_gap_ns < 0) ++inversions;
  if (response_gap_ns < 0) ++inversions;
  const double d = (static_cast<double>(request_gap_ns) -
                    static_cast<double>(response_gap_ns)) /
                   2.0;
  const double delta = d - offset_mean;
  offset_mean += delta / static_cast<double>(samples);
  offset_m2 += delta * (d - offset_mean);
  InsertGap(min_request_gaps, request_gap_ns);
  InsertGap(min_response_gaps, response_gap_ns);
}

double PairSkewStats::OffsetSpreadNs() const {
  if (samples < 2) return 0.0;
  return std::sqrt(offset_m2 / static_cast<double>(samples - 1));
}

std::int64_t PairSkewStats::RequestFloorNs() const {
  return Floor(min_request_gaps, samples);
}

std::int64_t PairSkewStats::ResponseFloorNs() const {
  return Floor(min_response_gaps, samples);
}

std::int64_t PairSkewStats::OffsetNs(std::size_t min_samples) const {
  if (samples < min_samples) return 0;
  const std::int64_t lo = -ResponseFloorNs();  // d >= -min g_resp
  const std::int64_t hi = RequestFloorNs();    // d <= min g_req
  // Clocks that could be synchronized (0 inside the feasible interval)
  // are left alone, which keeps clean input byte-identical.
  if (lo <= 0 && 0 <= hi) return 0;
  // Otherwise the midpoint, the symmetric (NTP-style) estimate. With a
  // non-empty interval it splits the one-way-delay asymmetry evenly, so
  // the residual error is bounded by half the difference between the two
  // directions' minimum network delays; when jitter empties the interval
  // the midpoint still tracks a constant offset under unbiased noise.
  return (lo + hi) / 2;
}

SkewEstimator::SkewEstimator(SkewEstimatorOptions options)
    : options_(options) {}

void SkewEstimator::ObserveSpan(const Span& s) {
  ObserveGaps({s.caller, s.caller_replica}, {s.callee, s.callee_replica},
              s.server_recv - s.client_send, s.client_recv - s.server_send);
}

void SkewEstimator::ObserveGaps(const VantageKey& caller,
                                const VantageKey& callee,
                                std::int64_t request_gap_ns,
                                std::int64_t response_gap_ns) {
  pairs_[{caller, callee}].Observe(request_gap_ns, response_gap_ns);
  ++observations_;
  frames_valid_ = false;
}

std::int64_t SkewEstimator::PairOffsetNs(const VantageKey& caller,
                                         const VantageKey& callee) const {
  const auto it = pairs_.find({caller, callee});
  if (it == pairs_.end()) return 0;
  return it->second.OffsetNs(options_.min_samples);
}

void SkewEstimator::SolveFrames() const {
  frames_.clear();
  // Pairwise offsets are edges d_AB = f_B - f_A of an undirected graph
  // over vantages; a BFS spanning tree per component fixes every frame
  // relative to the component's lexicographically smallest vantage
  // (frame 0). Map iteration keeps anchor choice and edge order
  // deterministic; on inconsistent cycles the first-reached tree edge
  // wins.
  std::map<VantageKey, std::vector<std::pair<VantageKey, std::int64_t>>>
      adjacency;
  for (const auto& [key, stats] : pairs_) {
    if (stats.samples < options_.min_samples) continue;
    const std::int64_t offset = stats.OffsetNs(options_.min_samples);
    adjacency[key.first].emplace_back(key.second, offset);
    adjacency[key.second].emplace_back(key.first, -offset);
  }
  std::vector<VantageKey> queue;
  for (const auto& [anchor, unused] : adjacency) {
    if (frames_.count(anchor) > 0) continue;
    queue.clear();
    queue.push_back(anchor);
    frames_[anchor] = 0;
    for (std::size_t q = 0; q < queue.size(); ++q) {
      const VantageKey current = queue[q];
      const std::int64_t base = frames_.at(current);
      for (const auto& [next, offset] : adjacency.at(current)) {
        if (frames_.emplace(next, base + offset).second) {
          queue.push_back(next);
        }
      }
    }
  }
  frames_valid_ = true;
}

std::int64_t SkewEstimator::FrameOffsetNs(const VantageKey& v) const {
  if (!frames_valid_) SolveFrames();
  const auto it = frames_.find(v);
  return it == frames_.end() ? 0 : it->second;
}

bool SkewEstimator::CorrectSpan(Span& s) const {
  const std::int64_t caller_off =
      FrameOffsetNs({s.caller, s.caller_replica});
  const std::int64_t callee_off =
      FrameOffsetNs({s.callee, s.callee_replica});
  if (caller_off == 0 && callee_off == 0) return false;
  s.client_send -= caller_off;
  s.client_recv -= caller_off;
  s.server_recv -= callee_off;
  s.server_send -= callee_off;
  return true;
}

std::size_t SkewEstimator::CorrectSpans(std::vector<Span>& spans) const {
  std::size_t corrected = 0;
  for (Span& s : spans) {
    if (CorrectSpan(s)) ++corrected;
  }
  return corrected;
}

std::map<std::pair<std::string, std::string>, long long>
SkewEstimator::EdgeSlacks() const {
  std::map<std::pair<std::string, std::string>, long long> out;
  for (const auto& [key, stats] : pairs_) {
    // Only pairs that produced inversions need slack: without inversions
    // the constraints never pruned a true candidate, and widening windows
    // on clean edges only invites wrong ones.
    if (stats.samples < options_.min_samples || stats.inversions == 0) {
      continue;
    }
    const long long slack = std::max<long long>(
        static_cast<long long>(
            std::ceil(options_.slack_multiplier * stats.OffsetSpreadNs())),
        options_.min_edge_slack_ns);
    long long& slot = out[{key.first.first, key.second.first}];
    slot = std::max(slot, slack);
  }
  return out;
}

std::int64_t SkewEstimator::MaxFrameOffsetNs() const {
  if (!frames_valid_) SolveFrames();
  std::int64_t max_off = 0;
  for (const auto& [vantage, offset] : frames_) {
    max_off = std::max<std::int64_t>(max_off, std::llabs(offset));
  }
  return max_off;
}

std::vector<std::string> SkewEstimator::CheckpointLines() const {
  std::vector<std::string> lines;
  lines.reserve(pairs_.size());
  for (const auto& [key, stats] : pairs_) {
    std::string line = "{\"ckpt\":\"skew\",";
    ckpt::AppendStrField(line, "caller", key.first.first);
    line += ",\"caller_replica\":" + std::to_string(key.first.second) + ",";
    ckpt::AppendStrField(line, "callee", key.second.first);
    line += ",\"callee_replica\":" + std::to_string(key.second.second);
    line += ",\"samples\":" + std::to_string(stats.samples);
    line += ",\"inversions\":" + std::to_string(stats.inversions);
    line += ",\"offset_mean\":" + FmtF64(stats.offset_mean);
    line += ",\"offset_m2\":" + FmtF64(stats.offset_m2) + ",";
    ckpt::AppendStrField(line, "req_gaps", JoinGaps(stats.min_request_gaps));
    line += ",";
    ckpt::AppendStrField(line, "resp_gaps",
                         JoinGaps(stats.min_response_gaps));
    line += "}";
    lines.push_back(std::move(line));
  }
  return lines;
}

bool SkewEstimator::LoadCheckpointLine(const std::string& line) {
  const auto caller = ckpt::FieldStr(line, "caller");
  const auto caller_replica = ckpt::FieldI64(line, "caller_replica");
  const auto callee = ckpt::FieldStr(line, "callee");
  const auto callee_replica = ckpt::FieldI64(line, "callee_replica");
  const auto samples = ckpt::FieldU64(line, "samples");
  const auto inversions = ckpt::FieldU64(line, "inversions");
  const auto offset_mean = ckpt::FieldF64(line, "offset_mean");
  const auto offset_m2 = ckpt::FieldF64(line, "offset_m2");
  const auto req_gaps = ckpt::FieldStr(line, "req_gaps");
  const auto resp_gaps = ckpt::FieldStr(line, "resp_gaps");
  if (!caller || !caller_replica || !callee || !callee_replica || !samples ||
      !inversions || !offset_mean || !offset_m2 || !req_gaps || !resp_gaps) {
    return false;
  }
  PairSkewStats stats;
  stats.samples = *samples;
  stats.inversions = *inversions;
  stats.offset_mean = *offset_mean;
  stats.offset_m2 = *offset_m2;
  if (!ParseGaps(*req_gaps, &stats.min_request_gaps) ||
      !ParseGaps(*resp_gaps, &stats.min_response_gaps)) {
    return false;
  }
  const VantageKey caller_key{*caller, static_cast<int>(*caller_replica)};
  const VantageKey callee_key{*callee, static_cast<int>(*callee_replica)};
  observations_ += stats.samples;
  pairs_[{caller_key, callee_key}] = std::move(stats);
  frames_valid_ = false;
  return true;
}

void SkewEstimator::FlushMetrics(obs::MetricsRegistry& registry) const {
  std::uint64_t samples = 0, inversions = 0;
  for (const auto& [key, stats] : pairs_) {
    samples += stats.samples;
    inversions += stats.inversions;
  }
  long long max_slack = 0;
  for (const auto& [edge, slack] : EdgeSlacks()) {
    max_slack = std::max(max_slack, slack);
  }
  registry
      .GetGauge("tw_skew_pairs", "",
                "Vantage pairs with accumulated skew evidence.", "1")
      .Set(static_cast<std::int64_t>(pairs_.size()));
  registry
      .GetGauge("tw_skew_samples", "",
                "Cross-vantage gap observations accumulated.", "1")
      .Set(static_cast<std::int64_t>(samples));
  registry
      .GetGauge("tw_skew_inversions", "",
                "Observations with a negative cross-vantage gap.", "1")
      .Set(static_cast<std::int64_t>(inversions));
  registry
      .GetGauge("tw_skew_max_frame_offset_ns", "",
                "Largest |per-vantage frame offset| in the current solve.",
                "ns")
      .Set(MaxFrameOffsetNs());
  registry
      .GetGauge("tw_skew_max_edge_slack_ns", "",
                "Largest derived per-edge feasibility slack.", "ns")
      .Set(max_slack);
}

}  // namespace traceweaver
