#include "core/delay_model.h"

#include <algorithm>

#include "util/time_types.h"

namespace traceweaver {
namespace {

/// Wide fallback for keys with no learned distribution: mean 0, stddev
/// 50 ms. Keeps scores finite and comparable rather than vetoing.
const Gaussian& FallbackGaussian() {
  static const Gaussian g{0.0, static_cast<double>(Millis(50))};
  return g;
}

/// Approximates the mixture's peak log-density by evaluating it at every
/// component mean (exact for single Gaussians; a tight lower bound for
/// mixtures, which is all the likelihood-ratio normalization needs).
double PeakLogPdf(const GaussianMixture& m) {
  double best = m.LogPdf(0.0);
  for (const GmmComponent& c : m.components()) {
    best = std::max(best, m.LogPdf(c.mean));
  }
  return best;
}

}  // namespace

void DelayModel::SetSeed(const DelayKey& key, const Gaussian& seed) {
  Entry e;
  e.mixture = GaussianMixture::FromGaussian(seed);
  e.max_log_pdf = PeakLogPdf(e.mixture);
  dists_[key] = std::move(e);
}

void DelayModel::Refit(const DelayKey& key, const std::vector<double>& gaps,
                       const GmmFitOptions& options) {
  if (gaps.empty()) return;
  Install(key, FitGmmBicSweep(gaps, options));
}

void DelayModel::Install(const DelayKey& key, GaussianMixture mixture) {
  Entry e;
  e.mixture = std::move(mixture);
  e.max_log_pdf = PeakLogPdf(e.mixture);
  dists_[key] = std::move(e);
}

double DelayModel::LogScore(const DelayKey& key, double gap) const {
  auto it = dists_.find(key);
  if (it == dists_.end()) return FallbackGaussian().LogPdf(gap);
  return it->second.mixture.LogPdf(gap);
}

double DelayModel::MaxLogScore(const DelayKey& key) const {
  auto it = dists_.find(key);
  if (it == dists_.end()) return FallbackGaussian().LogPdf(0.0);
  return it->second.max_log_pdf;
}

const GaussianMixture* DelayModel::Find(const DelayKey& key) const {
  auto it = dists_.find(key);
  return it == dists_.end() ? nullptr : &it->second.mixture;
}

DelayModel::DistView DelayModel::View(const DelayKey& key) const {
  auto it = dists_.find(key);
  if (it == dists_.end()) return {nullptr, FallbackGaussian().LogPdf(0.0)};
  return {&it->second.mixture, it->second.max_log_pdf};
}

double DelayModel::FallbackLogPdf(double gap) {
  return FallbackGaussian().LogPdf(gap);
}

void DelayModel::FallbackLogPdfBatch(std::span<const double> gaps,
                                     std::span<double> out) {
  FallbackGaussian().LogPdfBatch(gaps, out);
}

DelayModel::Summary DelayModel::Summarize() const {
  Summary s;
  s.keys = dists_.size();
  for (const auto& [key, entry] : dists_) {
    const std::size_t c = entry.mixture.num_components();
    s.components += c;
    if (c > 1) ++s.mixture_keys;
  }
  return s;
}

}  // namespace traceweaver
