// Delay-distribution drift detection.
//
// The call graph and delay models are learned once and reused (§3:
// preprocessing is "re-run only if the application is updated"). But
// deployments change silently. The drift detector compares a fresh window
// of inferred gap samples against the current DelayModel with a
// Kolmogorov-Smirnov test per delay key; sustained drift means the model
// (and possibly the call graph) should be re-learned.
#pragma once

#include <map>
#include <vector>

#include "core/delay_model.h"
#include "stats/ks_test.h"

namespace traceweaver {

struct DriftFinding {
  DelayKey key;
  KsResult ks;
  bool drifted = false;
};

struct DriftOptions {
  /// Significance level below which a key counts as drifted.
  double alpha = 0.01;
  /// Minimum samples per key before testing (KS is unstable below this).
  std::size_t min_samples = 30;
};

/// Tests each key's recent gap samples against the model. Keys without a
/// learned distribution or with too few samples are skipped.
std::vector<DriftFinding> DetectDrift(
    const DelayModel& model,
    const std::map<DelayKey, std::vector<double>>& recent_gaps,
    const DriftOptions& options = {});

/// True if any key drifted -- the "re-run preprocessing" trigger.
bool AnyDrift(const std::vector<DriftFinding>& findings);

}  // namespace traceweaver
