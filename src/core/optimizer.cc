#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/batching.h"
#include "core/mis_solver.h"
#include "stats/water_filling.h"
#include "util/summary.h"

namespace traceweaver {
namespace {

using PoolKey = std::pair<std::string, std::string>;  // (service, endpoint)

/// One incoming span to be mapped, with its plan and per-position pools.
struct ParentTask {
  const Span* span = nullptr;
  const InvocationPlan* plan = nullptr;
  std::vector<InvocationPlan::Position> positions;
  std::vector<PoolKey> position_keys;
  PositionPools pools;
  /// Per-position pinned children from partial instrumentation (empty when
  /// nothing is pinned for this parent).
  std::vector<const Span*> forced;
  std::vector<CandidateMapping> all_candidates;  ///< Enumerated once.
};

const std::vector<const Span*>& EmptyPool() {
  static const std::vector<const Span*> empty;
  return empty;
}

/// Everything shared across the pipeline stages for one container.
struct Workspace {
  const ContainerView* view = nullptr;
  const CallGraph* graph = nullptr;
  const OptimizerOptions* opts = nullptr;

  std::map<PoolKey, std::vector<const Span*>> pools;
  std::unordered_map<SpanId, const Span*> span_by_id;
  std::vector<ParentTask> tasks;       ///< Sorted by SpanStartOrder.
  std::vector<const Span*> task_spans; ///< Parallel to tasks, for batching.

  /// Pinned children by parent span id (§2.2.6 partial instrumentation).
  std::map<SpanId, std::vector<const Span*>> pinned_children;
  std::map<PoolKey, std::size_t> expected_calls;  ///< X_p per pool.
  std::map<PoolKey, std::size_t> skip_budget;     ///< max(0, X_p - |pool|).
  std::map<PoolKey, double> skip_rate;            ///< budget / expected.
  bool dynamism_active = false;
  std::size_t leaf_parents = 0;
};

void BuildPools(Workspace& ws) {
  const ParentAssignment* pinned = ws.opts->pinned;
  for (const auto& [callee, spans] : ws.view->outgoing_by_callee) {
    for (const Span* s : spans) {
      ws.span_by_id[s->id] = s;
      // Children pinned by instrumentation are withheld from the shared
      // pools; only their pinned parent may use them (via ParentTask::
      // forced).
      if (pinned != nullptr) {
        auto it = pinned->find(s->id);
        if (it != pinned->end() && it->second != kInvalidSpanId) {
          ws.pinned_children[it->second].push_back(s);
          continue;
        }
      }
      ws.pools[{callee, s->endpoint}].push_back(s);  // Order preserved.
    }
  }
}

void BuildTasks(Workspace& ws) {
  for (const Span* parent : ws.view->incoming) {
    const InvocationPlan* plan = ws.graph->PlanFor(
        HandlerKey{parent->callee, parent->endpoint});
    if (plan == nullptr || plan->Empty()) {
      ++ws.leaf_parents;
      continue;
    }
    ParentTask task;
    task.span = parent;
    task.plan = plan;
    task.positions = plan->Positions();
    for (const auto& pos : task.positions) {
      const BackendCall& call = plan->At(pos);
      const PoolKey key{call.service, call.endpoint};
      task.position_keys.push_back(key);
      auto it = ws.pools.find(key);
      task.pools.push_back(it == ws.pools.end() ? &EmptyPool()
                                                : &it->second);
    }
    // Slot pinned children into their plan positions (first matching free
    // position, in child send order).
    if (auto pit = ws.pinned_children.find(parent->id);
        pit != ws.pinned_children.end()) {
      task.forced.assign(task.positions.size(), nullptr);
      for (const Span* child : pit->second) {
        for (std::size_t i = 0; i < task.positions.size(); ++i) {
          if (task.forced[i] == nullptr &&
              task.position_keys[i] ==
                  PoolKey{child->callee, child->endpoint}) {
            task.forced[i] = child;
            break;
          }
        }
      }
    }
    // Pinned positions no longer draw on the shared pools.
    for (std::size_t i = 0; i < task.positions.size(); ++i) {
      if (task.forced.empty() || task.forced[i] == nullptr) {
        ++ws.expected_calls[task.position_keys[i]];
      }
    }
    ws.tasks.push_back(std::move(task));
    ws.task_spans.push_back(parent);
  }
}

void DetectDynamism(Workspace& ws) {
  bool any_optional = false;
  for (const ParentTask& t : ws.tasks) {
    for (const auto& pos : t.positions) {
      if (t.plan->At(pos).optional) any_optional = true;
    }
  }
  for (const auto& [key, expected] : ws.expected_calls) {
    const std::size_t observed =
        ws.pools.count(key) > 0 ? ws.pools.at(key).size() : 0;
    const std::size_t budget = expected > observed ? expected - observed : 0;
    ws.skip_budget[key] = budget;
    ws.skip_rate[key] =
        expected > 0 ? static_cast<double>(budget) /
                           static_cast<double>(expected)
                     : 0.0;
    if (budget > 0) ws.dynamism_active = true;
  }
  if (any_optional) ws.dynamism_active = true;
  if (!ws.opts->enable_dynamism) ws.dynamism_active = false;
}

void EnumerateAll(Workspace& ws) {
  EnumerationOptions eopts;
  eopts.use_order_constraints = ws.opts->use_order_constraints;
  eopts.allow_all_skips = ws.dynamism_active;
  eopts.branch_cap = ws.opts->params.enumeration_branch_cap;
  eopts.total_cap = ws.opts->params.enumeration_total_cap;
  eopts.slack = ws.opts->params.constraint_slack_ns;
  eopts.require_thread_match =
      ws.opts->thread_affinity == OptimizerOptions::ThreadAffinity::kHard;
  for (ParentTask& task : ws.tasks) {
    EnumerationOptions task_opts = eopts;
    if (!task.forced.empty()) task_opts.forced = &task.forced;
    task.all_candidates =
        EnumerateCandidates(*task.span, *task.plan, task.pools, task_opts);
  }
}

// ---------------------------------------------------------------------------
// Seed distributions (§4.1 step 3 first iteration; §4.2 step 4 under
// dynamism).
// ---------------------------------------------------------------------------

/// Series of enabling-event proxies per position: the parents' request
/// arrivals for stage 0, the previous stage's first pool completions for
/// later stages.
std::vector<double> TriggerSeries(const ParentTask& sample_task,
                                  std::size_t pos_idx,
                                  const std::vector<const Span*>& handler_parents) {
  const auto& pos = sample_task.positions[pos_idx];
  if (pos.stage == 0) {
    std::vector<double> out;
    out.reserve(handler_parents.size());
    for (const Span* p : handler_parents) {
      out.push_back(static_cast<double>(p->server_recv));
    }
    return out;
  }
  // Find the first position of the previous stage and use its pool's
  // completion times as the enabling-event proxy.
  for (std::size_t i = 0; i < sample_task.positions.size(); ++i) {
    if (sample_task.positions[i].stage == pos.stage - 1) {
      std::vector<double> out;
      for (const Span* c : *sample_task.pools[i]) {
        out.push_back(static_cast<double>(c->client_recv));
      }
      return out;
    }
  }
  return {};
}

/// Paper-style seeds: mean by difference of means, stddev via R bucket
/// means scaled by sqrt(R) (central limit theorem).
void SeedFromUnmatched(const Workspace& ws, DelayModel& model) {
  // Group parents by handler.
  std::map<PoolKey, std::vector<const Span*>> handler_parents;
  std::map<PoolKey, const ParentTask*> handler_task;
  for (const ParentTask& t : ws.tasks) {
    const PoolKey key{t.span->callee, t.span->endpoint};
    handler_parents[key].push_back(t.span);
    handler_task[key] = &t;
  }

  const std::size_t buckets = ws.opts->params.seed_buckets;
  for (const auto& [hkey, parents] : handler_parents) {
    const ParentTask& task = *handler_task.at(hkey);
    for (std::size_t i = 0; i < task.positions.size(); ++i) {
      const auto& pos = task.positions[i];
      std::vector<double> a = TriggerSeries(task, i, parents);
      std::vector<double> b;
      for (const Span* c : *task.pools[i]) {
        b.push_back(static_cast<double>(c->client_send));
      }
      if (a.empty() || b.empty()) continue;
      const DelayKey key{hkey.first, hkey.second,
                         static_cast<int>(pos.stage),
                         static_cast<int>(pos.call)};
      model.SetSeed(key, Gaussian::SeedFromUnmatched(a, b, buckets));
    }
    // Response gap: last stage's completions -> parent response sends.
    if (!task.positions.empty()) {
      const std::size_t last_stage = task.positions.back().stage;
      for (std::size_t i = 0; i < task.positions.size(); ++i) {
        if (task.positions[i].stage != last_stage ||
            task.positions[i].call != 0) {
          continue;
        }
        std::vector<double> a;
        for (const Span* c : *task.pools[i]) {
          a.push_back(static_cast<double>(c->client_recv));
        }
        std::vector<double> b;
        for (const Span* p : parents) {
          b.push_back(static_cast<double>(p->server_send));
        }
        if (a.empty() || b.empty()) break;
        model.SetSeed(DelayKey::ResponseGap(hkey.first, hkey.second),
                      Gaussian::SeedFromUnmatched(a, b, buckets));
        break;
      }
    }
  }
}

/// WAP5-style seeds for dynamism (§4.2 step 4): pair each child with the
/// most recent parent whose arrival precedes the child's departure, fit
/// Gaussians on the resulting gaps.
void SeedFromWap5(const Workspace& ws, DelayModel& model) {
  // Gap samples per delay key, via most-recent-parent attribution.
  std::map<DelayKey, std::vector<double>> samples;
  for (const auto& [pkey, pool] : ws.pools) {
    for (const Span* child : pool) {
      // Most recent parent (across handlers) that could have issued this
      // child.
      const Span* best = nullptr;
      const ParentTask* best_task = nullptr;
      for (const ParentTask& t : ws.tasks) {
        if (t.span->server_recv > child->client_send) break;  // Sorted.
        if (t.span->server_send < child->client_recv) continue;
        // Handler must actually call this backend.
        bool calls = false;
        for (const PoolKey& k : t.position_keys) {
          if (k == pkey) {
            calls = true;
            break;
          }
        }
        if (!calls) continue;
        best = t.span;
        best_task = &t;
      }
      if (best == nullptr) continue;
      // Attribute the gap to the first matching position of the handler.
      for (std::size_t i = 0; i < best_task->position_keys.size(); ++i) {
        if (best_task->position_keys[i] == pkey) {
          const auto& pos = best_task->positions[i];
          samples[DelayKey{best->callee, best->endpoint,
                           static_cast<int>(pos.stage),
                           static_cast<int>(pos.call)}]
              .push_back(
                  static_cast<double>(child->client_send - best->server_recv));
          break;
        }
      }
    }
  }
  for (const auto& [key, gaps] : samples) {
    model.SetSeed(key, Gaussian::Fit(gaps));
  }
}

DelayModel BuildSeeds(const Workspace& ws) {
  DelayModel model;
  // Unmatched (difference-of-means) seeds everywhere first; under dynamism
  // the WAP5-style most-recent-parent fits then overwrite the per-position
  // seeds, which the unmatched estimator skews when pools are depleted by
  // skipped calls (§4.2 step 4). Response-gap seeds stay unmatched-based.
  SeedFromUnmatched(ws, model);
  if (ws.dynamism_active) {
    SeedFromWap5(ws, model);
  }
  return model;
}

// ---------------------------------------------------------------------------
// Ranking, joint optimization, iteration.
// ---------------------------------------------------------------------------

std::vector<const Span*> Resolve(const Workspace& ws,
                                 const CandidateMapping& m) {
  std::vector<const Span*> out;
  out.reserve(m.children.size());
  for (SpanId id : m.children) {
    out.push_back(id == kSkippedChild ? nullptr : ws.span_by_id.at(id));
  }
  return out;
}

/// Scores and ranks each task's candidates, keeping the top K. Skip rates
/// come from the task's batch allocation when water-filling granted that
/// batch budget, falling back to the container-wide rates.
void RankCandidates(const Workspace& ws, const DelayModel& model,
                    const std::vector<std::size_t>& batch_of_task,
                    const std::vector<std::map<PoolKey, double>>& batch_rates,
                    std::vector<ParentResult>& results) {
  ScoringContext ctx;
  ctx.model = &model;
  ctx.use_order_constraints = ws.opts->use_order_constraints;
  if (ws.opts->thread_affinity == OptimizerOptions::ThreadAffinity::kSoft) {
    ctx.thread_match_bonus = ws.opts->thread_match_bonus;
  }

  const std::size_t top_k = ws.opts->params.max_candidates_per_span;
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    const auto& rates = batch_rates[batch_of_task[t]];
    ctx.skip_rates = rates.empty() ? &ws.skip_rate : &rates;
    const ParentTask& task = ws.tasks[t];
    std::vector<CandidateMapping> scored = task.all_candidates;
    for (CandidateMapping& m : scored) {
      m.score = ScoreMapping(*task.span, *task.plan, Resolve(ws, m), ctx);
    }
    std::sort(scored.begin(), scored.end(),
              [](const CandidateMapping& a, const CandidateMapping& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.children < b.children;  // Deterministic ties.
              });
    if (scored.size() > top_k) scored.resize(top_k);
    results[t].ranked = std::move(scored);
    results[t].chosen = -1;
  }
}

/// Per-batch skip-budget allocation by water-filling (§4.2 steps 2-3),
/// turned into per-batch skip rates used during scoring. Returns one rate
/// map per batch (empty map = use global rates).
std::vector<std::map<PoolKey, double>> AllocateSkips(
    const Workspace& ws, const std::vector<Batch>& batches) {
  std::vector<std::map<PoolKey, double>> rates(batches.size());
  if (!ws.dynamism_active) return rates;

  for (const auto& [pkey, budget] : ws.skip_budget) {
    if (budget == 0) continue;
    // Per-batch max quota Q = X - Y: positions needing the pool minus pool
    // spans confined to the batch's time window.
    std::vector<std::size_t> quotas(batches.size(), 0);
    std::vector<std::size_t> demand(batches.size(), 0);
    for (std::size_t b = 0; b < batches.size(); ++b) {
      const Batch& batch = batches[b];
      TimeNs lo = std::numeric_limits<TimeNs>::max();
      TimeNs hi = std::numeric_limits<TimeNs>::min();
      std::size_t x = 0;
      for (std::size_t t = batch.begin; t < batch.end; ++t) {
        const ParentTask& task = ws.tasks[t];
        lo = std::min(lo, task.span->server_recv);
        hi = std::max(hi, task.span->server_send);
        for (const PoolKey& k : task.position_keys) {
          if (k == pkey) ++x;
        }
      }
      std::size_t y = 0;
      auto it = ws.pools.find(pkey);
      if (it != ws.pools.end()) {
        for (const Span* s : it->second) {
          if (s->client_send >= lo && s->client_recv <= hi) ++y;
        }
      }
      demand[b] = x;
      quotas[b] = x > y ? x - y : 0;
    }
    const std::vector<std::size_t> alloc = WaterFill(budget, quotas);
    for (std::size_t b = 0; b < batches.size(); ++b) {
      if (demand[b] == 0) continue;
      rates[b][pkey] = static_cast<double>(alloc[b]) /
                       static_cast<double>(demand[b]);
    }
  }
  return rates;
}

/// Joint optimization of one batch via max-weight independent set
/// (§4.1 step 5). Candidates touching already-used children are excluded;
/// chosen children are added to `used`.
void SolveBatch(const Workspace& ws, const Batch& batch,
                std::vector<ParentResult>& results,
                std::unordered_set<SpanId>& used, ContainerResult& stats) {
  struct Vertex {
    std::size_t task;
    std::size_t cand;
    double score;
  };
  std::vector<Vertex> vertices;
  for (std::size_t t = batch.begin; t < batch.end; ++t) {
    const auto& ranked = results[t].ranked;
    for (std::size_t c = 0; c < ranked.size(); ++c) {
      bool conflict = false;
      for (SpanId id : ranked[c].children) {
        if (id != kSkippedChild && used.count(id) > 0) {
          conflict = true;
          break;
        }
      }
      if (!conflict) vertices.push_back({t, c, ranked[c].score});
    }
  }
  if (vertices.empty()) return;

  double min_s = vertices[0].score, max_s = vertices[0].score;
  for (const Vertex& v : vertices) {
    min_s = std::min(min_s, v.score);
    max_s = std::max(max_s, v.score);
  }
  // Weights are dominated by the number of *filled* positions so the joint
  // optimization maximizes the children consumed across the batch (the
  // role the paper's phantom skip spans play in its MIS encoding); the
  // normalized timing scores only break ties among equal-fill solutions.
  const double range = max_s - min_s;
  const double big = (range + 1.0) * static_cast<double>(batch.size() + 1);

  MisProblem problem;
  problem.weights.reserve(vertices.size());
  for (const Vertex& v : vertices) {
    const CandidateMapping& m = results[v.task].ranked[v.cand];
    const double filled =
        static_cast<double>(m.children.size() - m.skips);
    problem.weights.push_back((filled + 1.0) * big + (v.score - min_s) +
                              1.0);
  }
  problem.adjacency.assign(vertices.size(), {});
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const auto& ci = results[vertices[i].task].ranked[vertices[i].cand];
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      const auto& cj = results[vertices[j].task].ranked[vertices[j].cand];
      bool edge = vertices[i].task == vertices[j].task;
      if (!edge) {
        for (SpanId a : ci.children) {
          if (a == kSkippedChild) continue;
          for (SpanId b : cj.children) {
            if (a == b) {
              edge = true;
              break;
            }
          }
          if (edge) break;
        }
      }
      if (edge) {
        problem.adjacency[i].push_back(static_cast<int>(j));
        problem.adjacency[j].push_back(static_cast<int>(i));
      }
    }
  }

  const MisSolution sol = SolveMwis(problem, ws.opts->params.mis_node_budget);
  if (!sol.optimal) ++stats.mis_fallbacks;
  for (int vi : sol.chosen) {
    const Vertex& v = vertices[static_cast<std::size_t>(vi)];
    results[v.task].chosen = static_cast<int>(v.cand);
    for (SpanId id : results[v.task].ranked[v.cand].children) {
      if (id != kSkippedChild) used.insert(id);
    }
  }
}

/// Greedy assignment (ablation: no joint optimization): each span takes its
/// best-ranked conflict-free candidate, in arrival order.
void SolveGreedy(const Workspace& ws, std::vector<ParentResult>& results) {
  std::unordered_set<SpanId> used;
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    auto& r = results[t];
    for (std::size_t c = 0; c < r.ranked.size(); ++c) {
      bool conflict = false;
      for (SpanId id : r.ranked[c].children) {
        if (id != kSkippedChild && used.count(id) > 0) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      r.chosen = static_cast<int>(c);
      for (SpanId id : r.ranked[c].children) {
        if (id != kSkippedChild) used.insert(id);
      }
      break;
    }
  }
}

/// Refits the delay model from the current chosen mappings (§4.1 step 6).
void RefitModel(const Workspace& ws, const std::vector<ParentResult>& results,
                DelayModel& model) {
  std::map<DelayKey, std::vector<double>> gaps;
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    const ParentResult& r = results[t];
    if (!r.Mapped()) continue;
    const CandidateMapping& m = r.ranked[static_cast<std::size_t>(r.chosen)];
    const auto samples =
        ExtractGaps(*ws.tasks[t].span, *ws.tasks[t].plan, Resolve(ws, m),
                    ws.opts->use_order_constraints);
    for (const GapSample& s : samples) gaps[s.key].push_back(s.gap);
  }
  GmmFitOptions fit = ws.opts->gmm;
  fit.max_components = ws.opts->params.max_gmm_components;
  for (const auto& [key, samples] : gaps) {
    if (samples.size() >= 8) model.Refit(key, samples, fit);
  }
}

}  // namespace

void ContainerResult::AppendAssignment(ParentAssignment& out) const {
  for (const ParentResult& r : parents) {
    if (!r.Mapped()) continue;
    const CandidateMapping& m = r.ranked[static_cast<std::size_t>(r.chosen)];
    for (SpanId child : m.children) {
      if (child != kSkippedChild) out[child] = r.parent;
    }
  }
}

ContainerResult OptimizeContainer(const ContainerView& view,
                                  const CallGraph& graph,
                                  const OptimizerOptions& options) {
  Workspace ws;
  ws.view = &view;
  ws.graph = &graph;
  ws.opts = &options;

  ContainerResult result;
  result.instance = view.instance;

  BuildPools(ws);
  BuildTasks(ws);
  result.leaf_parents = ws.leaf_parents;
  if (ws.tasks.empty()) return result;

  DetectDynamism(ws);
  EnumerateAll(ws);

  const std::vector<Batch> batches =
      MakeBatches(ws.task_spans, options.params.max_batch_size);
  result.batches = batches.size();
  for (const Batch& b : batches) {
    if (!b.perfect) ++result.imperfect_batches;
  }

  DelayModel model = BuildSeeds(ws);

  // Per-batch skip budgets (water-filling, §4.2) and task->batch lookup.
  const auto batch_rates = AllocateSkips(ws, batches);
  std::vector<std::size_t> batch_of_task(ws.tasks.size(), 0);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (std::size_t t = batches[b].begin; t < batches[b].end; ++t) {
      batch_of_task[t] = b;
    }
  }

  std::vector<ParentResult> results(ws.tasks.size());
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    results[t].parent = ws.tasks[t].span->id;
  }

  const std::size_t iterations =
      options.iterate ? std::max<std::size_t>(options.params.iterations, 1)
                      : 1;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    RankCandidates(ws, model, batch_of_task, batch_rates, results);
    if (options.use_joint_optimization) {
      std::unordered_set<SpanId> used;
      for (const Batch& batch : batches) {
        SolveBatch(ws, batch, results, used, result);
      }
    } else {
      SolveGreedy(ws, results);
    }
    if (iter + 1 < iterations) RefitModel(ws, results, model);
  }

  result.parents = std::move(results);
  return result;
}

}  // namespace traceweaver
