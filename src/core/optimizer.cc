#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/batching.h"
#include "core/explain.h"
#include "core/mis_solver.h"
#include "obs/pipeline_metrics.h"
#include "obs/stage_timer.h"
#include "stats/water_filling.h"
#include "trace/span_soa.h"
#include "util/arena.h"
#include "util/summary.h"
#include "util/thread_pool.h"

namespace traceweaver {
namespace {

using PoolKey = std::pair<std::string, std::string>;  // (service, endpoint)
using HandlerPair = std::pair<std::string, std::string>;

/// One incoming span to be mapped, with its plan and per-position pools.
struct ParentTask {
  const Span* span = nullptr;
  const InvocationPlan* plan = nullptr;
  std::vector<InvocationPlan::Position> positions;
  std::vector<int> position_pool;  ///< Interned pool id per position.
  /// Per-position feasibility slack resolved from Parameters::
  /// edge_slack_ns; empty when no edge overrides exist (uniform slack).
  std::vector<DurationNs> position_slack;
  PositionPools pools;
  /// Per-position pinned children from partial instrumentation (empty when
  /// nothing is pinned for this parent).
  std::vector<const Span*> forced;
  std::vector<CandidateMapping> all_candidates;  ///< Enumerated once.
  /// Children of all_candidates resolved to spans, flat
  /// [cand * positions.size() + pos]; null where skipped. Built once so
  /// ranking never does per-candidate id lookups.
  std::vector<const Span*> resolved;

  /// Timing gaps + discrete flags of all_candidates in column-major SoA
  /// form, extracted once after enumeration (fast data path). Model-free,
  /// so it survives every ranking iteration unchanged.
  CandidateGapTable gap_table;

  // Reusable per-task scratch (only touched by the thread ranking this
  // task, so parallel ranking stays race-free).
  std::vector<std::pair<double, std::uint32_t>> order;
  std::vector<ScoringContext::PositionScore> pos_scores;
  std::vector<double> scores;      ///< Batch-scoring output, per candidate.
  std::vector<double> lp_scratch;  ///< Batch-scoring scratch, per candidate.
};

const std::vector<const Span*>& EmptyPool() {
  static const std::vector<const Span*> empty;
  return empty;
}

/// Pool spans and per-pool statistics indexed by a dense interned id, so
/// the hot paths index vectors instead of probing
/// map<pair<string,string>, ...>. Ids are assigned in sorted key order for
/// observed pools (so id-order iteration matches the previous map-order
/// behaviour), then first-seen order for plan-only keys with no observed
/// spans.
struct PoolTable {
  std::map<PoolKey, int> ids;
  std::vector<std::vector<const Span*>> spans;  ///< By id; may be empty.

  int Intern(const PoolKey& key) {
    auto [it, inserted] = ids.emplace(key, static_cast<int>(spans.size()));
    if (inserted) spans.emplace_back();
    return it->second;
  }
  int Find(const PoolKey& key) const {
    auto it = ids.find(key);
    return it == ids.end() ? -1 : it->second;
  }
  std::size_t size() const { return spans.size(); }
};

/// Everything shared across the pipeline stages for one container.
struct Workspace {
  const ContainerView* view = nullptr;
  const CallGraph* graph = nullptr;
  const OptimizerOptions* opts = nullptr;
  ThreadPool* pool = nullptr;  ///< Null = serial.
  /// Metric handles; points at an inert bundle when observability is off,
  /// so recording sites never branch on configuration.
  const obs::PipelineMetrics* pm = nullptr;

  PoolTable pools;
  /// Structure-of-arrays columns per pool id (timestamps, thread ids,
  /// interned names), built once after the pools settle; the window scans
  /// and seed-series loops walk these contiguous arrays instead of chasing
  /// Span pointers. Only filled on the fast data path.
  std::vector<SpanColumns> pool_columns;
  NameInterner names;
  bool fast_path = false;  ///< OptimizerOptions::fast_data_path.
  std::unordered_map<SpanId, const Span*> span_by_id;
  std::vector<ParentTask> tasks;       ///< Sorted by SpanStartOrder.
  std::vector<const Span*> task_spans; ///< Parallel to tasks, for batching.

  /// Pinned children by parent span id (§2.2.6 partial instrumentation).
  std::map<SpanId, std::vector<const Span*>> pinned_children;
  // Per-pool-id statistics (X_p etc.), dense.
  std::vector<std::size_t> expected_calls;  ///< X_p per pool.
  std::vector<std::size_t> skip_budget;     ///< max(0, X_p - |pool|).
  std::vector<double> skip_rate;            ///< budget / expected.
  std::vector<char> has_rate;               ///< Pool had expected calls.
  bool dynamism_active = false;
  std::size_t leaf_parents = 0;
};

void BuildPools(Workspace& ws) {
  const ParentAssignment* pinned = ws.opts->pinned;
  std::size_t outgoing = 0;
  for (const auto& [callee, spans] : ws.view->outgoing_by_callee) {
    outgoing += spans.size();
  }
  ws.span_by_id.reserve(outgoing);
  // Pool ids are assigned in encounter order; nothing keys on the numeric
  // order of ids (iteration that must be deterministic across runs walks
  // the sorted ids map instead), so no sorted intermediate is needed.
  for (const auto& [callee, spans] : ws.view->outgoing_by_callee) {
    int pool_id = -1;
    const std::string* pool_ep = nullptr;
    for (const Span* s : spans) {
      ws.span_by_id[s->id] = s;
      // Children pinned by instrumentation are withheld from the shared
      // pools; only their pinned parent may use them (via ParentTask::
      // forced).
      if (pinned != nullptr) {
        auto it = pinned->find(s->id);
        if (it != pinned->end() && it->second != kInvalidSpanId) {
          ws.pinned_children[it->second].push_back(s);
          continue;
        }
      }
      // Pools are endpoint-partitioned within this callee group; memoize
      // the previous endpoint's id since spans often arrive in runs.
      if (pool_ep == nullptr || s->endpoint != *pool_ep) {
        pool_id = ws.pools.Intern(PoolKey{callee, s->endpoint});
        pool_ep = &s->endpoint;
      }
      ws.pools.spans[static_cast<std::size_t>(pool_id)].push_back(s);
    }
  }
}

void BuildTasks(Workspace& ws) {
  for (const Span* parent : ws.view->incoming) {
    const InvocationPlan* plan = ws.graph->PlanFor(
        HandlerKey{parent->callee, parent->endpoint});
    if (plan == nullptr || plan->Empty()) {
      ++ws.leaf_parents;
      continue;
    }
    ParentTask task;
    task.span = parent;
    task.plan = plan;
    task.positions = plan->Positions();
    for (const auto& pos : task.positions) {
      const BackendCall& call = plan->At(pos);
      task.position_pool.push_back(
          ws.pools.Intern(PoolKey{call.service, call.endpoint}));
    }
    // Slot pinned children into their plan positions (first matching free
    // position, in child send order).
    if (auto pit = ws.pinned_children.find(parent->id);
        pit != ws.pinned_children.end()) {
      task.forced.assign(task.positions.size(), nullptr);
      for (const Span* child : pit->second) {
        const int child_pool =
            ws.pools.Find(PoolKey{child->callee, child->endpoint});
        for (std::size_t i = 0; i < task.positions.size(); ++i) {
          if (task.forced[i] == nullptr &&
              task.position_pool[i] == child_pool) {
            task.forced[i] = child;
            break;
          }
        }
      }
    }
    ws.tasks.push_back(std::move(task));
    ws.task_spans.push_back(parent);
  }
  // Interning is done; pool-span vectors will not move again, so position
  // pool pointers and expected-call counters can be filled in.
  ws.expected_calls.assign(ws.pools.size(), 0);
  for (ParentTask& task : ws.tasks) {
    for (std::size_t i = 0; i < task.positions.size(); ++i) {
      const int id = task.position_pool[i];
      const auto& pool = ws.pools.spans[static_cast<std::size_t>(id)];
      task.pools.push_back(pool.empty() ? &EmptyPool() : &pool);
      // Pinned positions no longer draw on the shared pools.
      if (task.forced.empty() || task.forced[i] == nullptr) {
        ++ws.expected_calls[static_cast<std::size_t>(id)];
      }
    }
  }
}

void DetectDynamism(Workspace& ws) {
  bool any_optional = false;
  for (const ParentTask& t : ws.tasks) {
    for (const auto& pos : t.positions) {
      if (t.plan->At(pos).optional) any_optional = true;
    }
  }
  ws.skip_budget.assign(ws.pools.size(), 0);
  ws.skip_rate.assign(ws.pools.size(), 0.0);
  ws.has_rate.assign(ws.pools.size(), 0);
  const double sampling = ws.opts->params.sampling_rate;
  for (std::size_t p = 0; p < ws.pools.size(); ++p) {
    const std::size_t expected = ws.expected_calls[p];
    if (expected == 0) continue;
    const std::size_t observed = ws.pools.spans[p].size();
    std::size_t budget = expected > observed ? expected - observed : 0;
    if (sampling < 1.0) {
      // Under span sampling, missing parents and missing children cancel
      // in expected-vs-observed counts, starving the budget exactly when
      // skips are most needed. Floor it at the expected number of
      // sampled-out children so absences stay explainable.
      const auto floor_budget = static_cast<std::size_t>(
          std::ceil(static_cast<double>(expected) * (1.0 - sampling)));
      budget = std::max(budget, floor_budget);
    }
    ws.skip_budget[p] = budget;
    ws.skip_rate[p] =
        static_cast<double>(budget) / static_cast<double>(expected);
    ws.has_rate[p] = 1;
    if (budget > 0) ws.dynamism_active = true;
  }
  if (any_optional) ws.dynamism_active = true;
  if (sampling < 1.0) ws.dynamism_active = true;
  if (!ws.opts->enable_dynamism) ws.dynamism_active = false;
}

void EnumerateAll(Workspace& ws) {
  EnumerationOptions eopts;
  eopts.use_order_constraints = ws.opts->use_order_constraints;
  eopts.allow_all_skips = ws.dynamism_active;
  eopts.branch_cap = ws.opts->params.enumeration_branch_cap;
  eopts.total_cap = ws.opts->params.enumeration_total_cap;
  eopts.slack = ws.opts->params.constraint_slack_ns;
  eopts.require_thread_match =
      ws.opts->thread_affinity == OptimizerOptions::ThreadAffinity::kHard;
  // Per-edge slack: resolve each task's plan positions against the edge
  // map once, outside the parallel region (the DFS then indexes a flat
  // vector). Empty map keeps the uniform-slack fast path.
  if (!ws.opts->params.edge_slack_ns.empty()) {
    for (ParentTask& task : ws.tasks) {
      task.position_slack.resize(task.positions.size());
      for (std::size_t i = 0; i < task.positions.size(); ++i) {
        task.position_slack[i] = ws.opts->params.SlackFor(
            task.span->callee, task.plan->At(task.positions[i]).service);
      }
    }
  }
  // Tasks are independent: each writes only its own slots (concurrent
  // reads of the shared pools and span index are safe). Work counters go
  // to per-task slots and are folded into the registry afterwards, in
  // index order, so totals are identical for any pool size.
  struct ArenaTaskStats {
    std::size_t used = 0;     ///< Bytes this task drew from its arena.
    std::uint64_t allocs = 0; ///< Allocate() calls this task issued.
  };
  std::vector<EnumerationStats> stats(ws.tasks.size());
  std::vector<ArenaTaskStats> arena_stats(
      ws.fast_path ? ws.tasks.size() : 0);
  ThreadPool::Run(ws.pool, ws.tasks.size(), [&](std::size_t t) {
    ParentTask& task = ws.tasks[t];
    EnumerationOptions task_opts = eopts;
    if (!task.forced.empty()) task_opts.forced = &task.forced;
    if (!task.position_slack.empty()) {
      task_opts.position_slack = &task.position_slack;
    }
    task_opts.positions = &task.positions;
    task_opts.stats = &stats[t];
    // The DFS fills the flat resolved-pointer buffer as a side product of
    // emitting each mapping, so no id -> span resolution pass is needed.
    task_opts.resolved_out = &task.resolved;
    if (ws.fast_path) {
      // One warmed-up arena per worker thread, rewound between tasks: after
      // the first few tasks the DFS scratch never touches the heap again.
      thread_local ArenaAllocator arena;
      arena.Reset();
      const std::uint64_t allocs_before = arena.allocations();
      task_opts.scratch = &arena;
      task.all_candidates =
          EnumerateCandidates(*task.span, *task.plan, task.pools, task_opts);
      // The gap table is model-free, so it is built once here and reused by
      // every ranking iteration's batched scoring pass.
      task.gap_table = BuildGapTable(
          *task.span, task.positions, task.resolved.data(),
          task.all_candidates.size(), eopts.use_order_constraints);
      arena_stats[t] = {arena.used(), arena.allocations() - allocs_before};
    } else {
      task.all_candidates =
          EnumerateCandidates(*task.span, *task.plan, task.pools, task_opts);
    }
  });

  const obs::PipelineMetrics& pm = *ws.pm;
  EnumerationStats total;
  std::uint64_t candidates = 0;
  std::uint64_t arena_bytes = 0, arena_allocs = 0;
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    total.dfs_nodes += stats[t].dfs_nodes;
    total.branch_limited += stats[t].branch_limited;
    total.total_capped += stats[t].total_capped;
    candidates += ws.tasks[t].all_candidates.size();
    pm.candidates_per_parent.Observe(ws.tasks[t].all_candidates.size());
    if (ws.fast_path) {
      arena_bytes += arena_stats[t].used;
      arena_allocs += arena_stats[t].allocs;
    }
  }
  pm.candidates.Inc(candidates);
  pm.enum_dfs_nodes.Inc(total.dfs_nodes);
  pm.enum_branch_limited.Inc(total.branch_limited);
  pm.enum_total_capped.Inc(total.total_capped);
  if (ws.fast_path) {
    pm.arena_scratch_bytes.Inc(arena_bytes);
    pm.arena_allocations.Inc(arena_allocs);
  }
}

// ---------------------------------------------------------------------------
// Seed distributions (§4.1 step 3 first iteration; §4.2 step 4 under
// dynamism).
// ---------------------------------------------------------------------------

/// Widened copy of one pool timestamp column: the fast path reads the
/// contiguous SoA column, the fallback chases the span pointers; both
/// produce the same values in the same (client_send-sorted) order.
std::vector<double> PoolSeries(const Workspace& ws, const ParentTask& task,
                               std::size_t pos_idx, bool response_side) {
  std::vector<double> out;
  if (ws.fast_path) {
    const auto id = static_cast<std::size_t>(task.position_pool[pos_idx]);
    const std::vector<TimeNs>& col = response_side
                                         ? ws.pool_columns[id].client_recv
                                         : ws.pool_columns[id].client_send;
    out.reserve(col.size());
    for (const TimeNs t : col) out.push_back(static_cast<double>(t));
    return out;
  }
  out.reserve(task.pools[pos_idx]->size());
  for (const Span* c : *task.pools[pos_idx]) {
    out.push_back(
        static_cast<double>(response_side ? c->client_recv : c->client_send));
  }
  return out;
}

/// Series of enabling-event proxies per position: the parents' request
/// arrivals for stage 0, the previous stage's first pool completions for
/// later stages.
std::vector<double> TriggerSeries(const Workspace& ws,
                                  const ParentTask& sample_task,
                                  std::size_t pos_idx,
                                  const std::vector<const Span*>& handler_parents) {
  const auto& pos = sample_task.positions[pos_idx];
  if (pos.stage == 0) {
    std::vector<double> out;
    out.reserve(handler_parents.size());
    for (const Span* p : handler_parents) {
      out.push_back(static_cast<double>(p->server_recv));
    }
    return out;
  }
  // Find the first position of the previous stage and use its pool's
  // completion times as the enabling-event proxy.
  for (std::size_t i = 0; i < sample_task.positions.size(); ++i) {
    if (sample_task.positions[i].stage == pos.stage - 1) {
      return PoolSeries(ws, sample_task, i, /*response_side=*/true);
    }
  }
  return {};
}

/// Paper-style seeds: mean by difference of means, stddev via R bucket
/// means scaled by sqrt(R) (central limit theorem).
void SeedFromUnmatched(const Workspace& ws, DelayModel& model) {
  // Group parents by handler.
  std::map<PoolKey, std::vector<const Span*>> handler_parents;
  std::map<PoolKey, const ParentTask*> handler_task;
  for (const ParentTask& t : ws.tasks) {
    const PoolKey key{t.span->callee, t.span->endpoint};
    handler_parents[key].push_back(t.span);
    handler_task[key] = &t;
  }

  const std::size_t buckets = ws.opts->params.seed_buckets;
  for (const auto& [hkey, parents] : handler_parents) {
    const ParentTask& task = *handler_task.at(hkey);
    for (std::size_t i = 0; i < task.positions.size(); ++i) {
      const auto& pos = task.positions[i];
      std::vector<double> a = TriggerSeries(ws, task, i, parents);
      std::vector<double> b = PoolSeries(ws, task, i, /*response_side=*/false);
      if (a.empty() || b.empty()) continue;
      const DelayKey key{hkey.first, hkey.second,
                         static_cast<int>(pos.stage),
                         static_cast<int>(pos.call)};
      model.SetSeed(key, Gaussian::SeedFromUnmatched(a, b, buckets));
    }
    // Response gap: last stage's completions -> parent response sends.
    if (!task.positions.empty()) {
      const std::size_t last_stage = task.positions.back().stage;
      for (std::size_t i = 0; i < task.positions.size(); ++i) {
        if (task.positions[i].stage != last_stage ||
            task.positions[i].call != 0) {
          continue;
        }
        std::vector<double> a = PoolSeries(ws, task, i, /*response_side=*/true);
        std::vector<double> b;
        for (const Span* p : parents) {
          b.push_back(static_cast<double>(p->server_send));
        }
        if (a.empty() || b.empty()) break;
        model.SetSeed(DelayKey::ResponseGap(hkey.first, hkey.second),
                      Gaussian::SeedFromUnmatched(a, b, buckets));
        break;
      }
    }
  }
}

/// WAP5-style seeds for dynamism (§4.2 step 4): pair each child with the
/// most recent parent whose arrival precedes the child's departure, fit
/// Gaussians on the resulting gaps.
void SeedFromWap5(const Workspace& ws, DelayModel& model) {
  // Tasks eligible for each pool (they call that backend), with the first
  // matching plan position; task order == start order, so each list is
  // sorted by parent arrival.
  struct Caller {
    std::size_t task;
    int stage;
    int call;
  };
  std::vector<std::vector<Caller>> callers(ws.pools.size());
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    const ParentTask& task = ws.tasks[t];
    for (std::size_t i = 0; i < task.positions.size(); ++i) {
      const int p = task.position_pool[i];
      bool first = true;  // Attribute to the first matching position only.
      for (std::size_t j = 0; j < i; ++j) {
        if (task.position_pool[j] == p) {
          first = false;
          break;
        }
      }
      if (!first) continue;
      callers[static_cast<std::size_t>(p)].push_back(
          Caller{t, static_cast<int>(task.positions[i].stage),
                 static_cast<int>(task.positions[i].call)});
    }
  }

  // Gap samples per delay key, via most-recent-parent attribution. Pools
  // iterate in key order and children in send order, so sample order (and
  // the resulting fits) match the previous full-scan implementation.
  std::map<DelayKey, std::vector<double>> samples;
  for (const auto& [pkey, pid] : ws.pools.ids) {
    (void)pkey;
    const auto& pool = ws.pools.spans[static_cast<std::size_t>(pid)];
    const auto& cs = callers[static_cast<std::size_t>(pid)];
    if (pool.empty() || cs.empty()) continue;
    // Children are sorted by client_send, so the cursor over eligible
    // parents only moves forward; the backward walk finds the most recent
    // parent whose response window still covers the child. The fast path
    // reads the pool's SoA timestamp columns; values are identical.
    const SpanColumns* col =
        ws.fast_path ? &ws.pool_columns[static_cast<std::size_t>(pid)]
                     : nullptr;
    std::size_t hi = 0;
    for (std::size_t ci = 0; ci < pool.size(); ++ci) {
      const TimeNs child_send =
          col != nullptr ? col->client_send[ci] : pool[ci]->client_send;
      const TimeNs child_recv =
          col != nullptr ? col->client_recv[ci] : pool[ci]->client_recv;
      while (hi < cs.size() &&
             ws.tasks[cs[hi].task].span->server_recv <= child_send) {
        ++hi;
      }
      const Caller* best = nullptr;
      for (std::size_t k = hi; k-- > 0;) {
        if (ws.tasks[cs[k].task].span->server_send >= child_recv) {
          best = &cs[k];
          break;
        }
      }
      if (best == nullptr) continue;
      const Span* parent = ws.tasks[best->task].span;
      samples[DelayKey{parent->callee, parent->endpoint, best->stage,
                       best->call}]
          .push_back(static_cast<double>(child_send - parent->server_recv));
    }
  }
  for (const auto& [key, gaps] : samples) {
    model.SetSeed(key, Gaussian::Fit(gaps));
  }
}

DelayModel BuildSeeds(const Workspace& ws) {
  DelayModel model;
  // Unmatched (difference-of-means) seeds everywhere first; under dynamism
  // the WAP5-style most-recent-parent fits then overwrite the per-position
  // seeds, which the unmatched estimator skews when pools are depleted by
  // skipped calls (§4.2 step 4). Response-gap seeds stay unmatched-based.
  SeedFromUnmatched(ws, model);
  if (ws.dynamism_active) {
    SeedFromWap5(ws, model);
  }
  return model;
}

// ---------------------------------------------------------------------------
// Ranking, joint optimization, iteration.
// ---------------------------------------------------------------------------

/// Per-batch skip rates by pool id; `any` false means "use the container
/// rates".
struct BatchRates {
  std::vector<double> rate;
  std::vector<char> has;
  bool any = false;
};

/// Per-batch skip-budget allocation by water-filling (§4.2 steps 2-3),
/// turned into per-batch skip rates used during scoring.
std::vector<BatchRates> AllocateSkips(const Workspace& ws,
                                      const std::vector<Batch>& batches) {
  std::vector<BatchRates> rates(batches.size());
  if (!ws.dynamism_active) return rates;

  // Batch time windows, hoisted out of the per-pool loop.
  std::vector<TimeNs> win_lo(batches.size());
  std::vector<TimeNs> win_hi(batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    TimeNs lo = std::numeric_limits<TimeNs>::max();
    TimeNs hi = std::numeric_limits<TimeNs>::min();
    for (std::size_t t = batches[b].begin; t < batches[b].end; ++t) {
      lo = std::min(lo, ws.tasks[t].span->server_recv);
      hi = std::max(hi, ws.tasks[t].span->server_send);
    }
    win_lo[b] = lo;
    win_hi[b] = hi;
  }

  for (std::size_t p = 0; p < ws.pools.size(); ++p) {
    const std::size_t budget = ws.skip_budget[p];
    if (budget == 0) continue;
    // Per-batch max quota Q = X - Y: positions needing the pool minus pool
    // spans confined to the batch's time window.
    std::vector<std::size_t> quotas(batches.size(), 0);
    std::vector<std::size_t> demand(batches.size(), 0);
    const auto& pool = ws.pools.spans[p];
    for (std::size_t b = 0; b < batches.size(); ++b) {
      std::size_t x = 0;
      for (std::size_t t = batches[b].begin; t < batches[b].end; ++t) {
        for (const int k : ws.tasks[t].position_pool) {
          if (k == static_cast<int>(p)) ++x;
        }
      }
      std::size_t y = 0;
      // Pool spans are sorted by client_send: jump to the window start and
      // stop once past its end (client_recv <= hi implies
      // client_send <= hi). The fast path binary-searches and walks the
      // contiguous SoA timestamp columns instead of span pointers.
      if (ws.fast_path) {
        const SpanColumns& col = ws.pool_columns[p];
        const auto first = std::lower_bound(col.client_send.begin(),
                                            col.client_send.end(), win_lo[b]);
        for (auto i = static_cast<std::size_t>(
                 first - col.client_send.begin());
             i < col.client_send.size(); ++i) {
          if (col.client_send[i] > win_hi[b]) break;
          if (col.client_recv[i] <= win_hi[b]) ++y;
        }
      } else {
        const auto first = std::lower_bound(
            pool.begin(), pool.end(), win_lo[b],
            [](const Span* s, TimeNs t) { return s->client_send < t; });
        for (auto it = first; it != pool.end(); ++it) {
          if ((*it)->client_send > win_hi[b]) break;
          if ((*it)->client_recv <= win_hi[b]) ++y;
        }
      }
      demand[b] = x;
      quotas[b] = x > y ? x - y : 0;
    }
    const std::vector<std::size_t> alloc = WaterFill(budget, quotas);
    for (std::size_t b = 0; b < batches.size(); ++b) {
      if (demand[b] == 0) continue;
      BatchRates& br = rates[b];
      if (!br.any) {
        br.rate.assign(ws.pools.size(), 0.0);
        br.has.assign(ws.pools.size(), 0);
        br.any = true;
      }
      br.rate[p] = static_cast<double>(alloc[b]) /
                   static_cast<double>(demand[b]);
      br.has[p] = 1;
    }
  }
  return rates;
}

/// Fills the task's per-position scoring table for one iteration: discrete
/// skip/keep terms from the (batch or container) rates plus the current
/// delay distributions. O(positions) per task -- tiny next to scoring.
void BuildPositionScores(const Workspace& ws, ParentTask& task,
                         const BatchRates& batch, const DelayModel& model,
                         const ScoringContext& defaults) {
  task.pos_scores.resize(task.positions.size());
  for (std::size_t i = 0; i < task.positions.size(); ++i) {
    ScoringContext::PositionScore& ps = task.pos_scores[i];
    ps.skip_lp = defaults.skip_log_prob;
    ps.keep_lp = defaults.keep_log_prob;
    const std::size_t p = static_cast<std::size_t>(task.position_pool[i]);
    const bool known = batch.any ? batch.has[p] != 0 : ws.has_rate[p] != 0;
    if (known) {
      const double raw = batch.any ? batch.rate[p] : ws.skip_rate[p];
      const double rate = std::clamp(raw, 1e-4, 1.0 - 1e-4);
      ps.skip_lp = std::log(rate);
      ps.keep_lp = std::log(1.0 - rate);
    } else {
      // Water-filled rates already reflect sampled-out children via the
      // floored budget (DetectDynamism); only the defaults need it.
      AdjustForSampling(defaults.sampling_rate, ps.skip_lp, ps.keep_lp);
    }
    const DelayModel::DistView view =
        model.View(DelayKey{task.span->callee, task.span->endpoint,
                            static_cast<int>(task.positions[i].stage),
                            static_cast<int>(task.positions[i].call)});
    ps.dist = view.mixture;
    ps.max_log_pdf = view.max_log_pdf;
  }
}

/// Scores and ranks each task's candidates, keeping the top K. Skip rates
/// come from the task's batch allocation when water-filling granted that
/// batch budget, falling back to the container-wide rates. When
/// `dirty_handlers` is non-null (iterations >= 2), only tasks whose
/// handler owns a refitted delay key are re-scored -- every score of an
/// untouched handler is unchanged by construction, so its ranking stands.
void RankCandidates(Workspace& ws, const DelayModel& model,
                    const std::vector<std::size_t>& batch_of_task,
                    const std::vector<BatchRates>& batch_rates,
                    const std::set<HandlerPair>* dirty_handlers,
                    std::vector<ParentResult>& results) {
  ScoringContext base;
  base.model = &model;
  base.use_order_constraints = ws.opts->use_order_constraints;
  base.sampling_rate = ws.opts->params.sampling_rate;
  if (ws.opts->thread_affinity == OptimizerOptions::ThreadAffinity::kSoft) {
    base.thread_match_bonus = ws.opts->thread_match_bonus;
  }

  const std::size_t top_k = ws.opts->params.max_candidates_per_span;
  ThreadPool::Run(ws.pool, ws.tasks.size(), [&](std::size_t t) {
    ParentTask& task = ws.tasks[t];
    if (dirty_handlers != nullptr &&
        dirty_handlers->count(
            HandlerPair{task.span->callee, task.span->endpoint}) == 0) {
      ws.pm->rank_tasks_skipped.Inc();
      return;  // Scores unchanged since last iteration.
    }
    ws.pm->rank_tasks.Inc();
    BuildPositionScores(ws, task, batch_rates[batch_of_task[t]], model,
                        base);
    ScoringContext ctx = base;
    ctx.positions = &task.positions;
    ctx.position_scores = &task.pos_scores;
    const DelayModel::DistView response = model.View(
        DelayKey::ResponseGap(task.span->callee, task.span->endpoint));
    ctx.response_dist = response.mixture;
    ctx.response_max_log_pdf = response.max_log_pdf;

    const std::size_t npos = task.positions.size();
    const std::size_t n = task.all_candidates.size();
    task.order.resize(n);
    if (ws.fast_path) {
      // One batched LogPdf per gap-table column instead of one per
      // (candidate, position); scores accumulate in ScoreMappingFlat's
      // exact floating-point order, so the ranking is bitwise unchanged.
      task.scores.resize(n);
      task.lp_scratch.resize(n);
      ScoreCandidatesBatch(task.gap_table, ctx, task.scores,
                           task.lp_scratch);
      for (std::size_t c = 0; c < n; ++c) {
        task.order[c] = {task.scores[c], static_cast<std::uint32_t>(c)};
      }
    } else {
      for (std::size_t c = 0; c < n; ++c) {
        task.order[c] = {
            ScoreMappingFlat(*task.span, *task.plan,
                             task.resolved.data() + c * npos, ctx),
            static_cast<std::uint32_t>(c)};
      }
    }
    const std::size_t keep = std::min(top_k, n);
    std::partial_sort(
        task.order.begin(), task.order.begin() + static_cast<long>(keep),
        task.order.end(),
        [&task](const std::pair<double, std::uint32_t>& a,
                const std::pair<double, std::uint32_t>& b) {
          if (a.first != b.first) return a.first > b.first;
          return task.all_candidates[a.second].children <
                 task.all_candidates[b.second].children;  // Deterministic.
        });
    // Score margin between the two best candidates, in milli log-likelihood
    // units (integer so merged histogram sums stay order-independent).
    if (keep >= 2) {
      const double margin = task.order[0].first - task.order[1].first;
      ws.pm->rank_margin_milli.Observe(
          static_cast<std::uint64_t>(std::max(margin, 0.0) * 1e3));
    }
    ParentResult& r = results[t];
    r.ranked.clear();
    r.ranked.reserve(keep);
    for (std::size_t j = 0; j < keep; ++j) {
      CandidateMapping m = task.all_candidates[task.order[j].second];
      m.score = task.order[j].first;
      r.ranked.push_back(std::move(m));
    }
  });
}

/// A candidate kept for the joint optimization: (task, ranked index).
struct SolveVertex {
  std::uint32_t task;
  std::uint32_t cand;
  double score;
};

template <typename T>
using ArenaVec = std::vector<T, ArenaStlAllocator<T>>;

/// Reusable per-run buffers for SolveBatch, arena-backed: consecutive
/// batches of a run bump-allocate from one monotonic arena and reuse
/// capacity instead of hitting the heap per structure per batch. One
/// instance (and one arena) per run keeps parallel run solving race-free.
/// MisProblem stays heap-backed -- it is the solver's public API type.
struct SolveScratch {
  explicit SolveScratch(ArenaAllocator* arena)
      : vertices(ArenaStlAllocator<SolveVertex>(arena)),
        task_ranges(
            ArenaStlAllocator<std::pair<std::size_t, std::size_t>>(arena)),
        child_verts(ArenaStlAllocator<std::pair<SpanId, std::uint32_t>>(arena)),
        edges(ArenaStlAllocator<std::uint64_t>(arena)),
        degree(ArenaStlAllocator<std::uint32_t>(arena)) {}

  ArenaVec<SolveVertex> vertices;
  /// Vertex ranges per task, for the same-task conflict cliques.
  ArenaVec<std::pair<std::size_t, std::size_t>> task_ranges;
  /// Inverted child index: (child span, vertex) pairs, sorted.
  ArenaVec<std::pair<SpanId, std::uint32_t>> child_verts;
  /// Conflict edges packed as (i << 32) | j with i < j.
  ArenaVec<std::uint64_t> edges;
  ArenaVec<std::uint32_t> degree;
  MisProblem problem;
};

/// Joint optimization of one batch via max-weight independent set
/// (§4.1 step 5). Candidates touching already-used children are excluded;
/// chosen children are added to `used`.
void SolveBatch(const Workspace& ws, const Batch& batch,
                std::vector<ParentResult>& results,
                std::unordered_set<SpanId>& used, SolveScratch& scratch,
                std::size_t& mis_fallbacks,
                ContainerResult::BatchStats* qstats) {
  if (qstats != nullptr) *qstats = ContainerResult::BatchStats{};
  ArenaVec<SolveVertex>& vertices = scratch.vertices;
  vertices.clear();
  scratch.task_ranges.clear();
  for (std::size_t t = batch.begin; t < batch.end; ++t) {
    const auto& ranked = results[t].ranked;
    const std::size_t start = vertices.size();
    for (std::size_t c = 0; c < ranked.size(); ++c) {
      bool conflict = false;
      for (SpanId id : ranked[c].children) {
        if (id != kSkippedChild && used.count(id) > 0) {
          conflict = true;
          break;
        }
      }
      if (!conflict) {
        vertices.push_back({static_cast<std::uint32_t>(t),
                            static_cast<std::uint32_t>(c),
                            ranked[c].score});
      }
    }
    if (vertices.size() > start) {
      scratch.task_ranges.push_back({start, vertices.size()});
    }
  }
  if (vertices.empty()) return;

  double min_s = vertices[0].score, max_s = vertices[0].score;
  for (const SolveVertex& v : vertices) {
    min_s = std::min(min_s, v.score);
    max_s = std::max(max_s, v.score);
  }
  // Weights are dominated by the number of *filled* positions so the joint
  // optimization maximizes the children consumed across the batch (the
  // role the paper's phantom skip spans play in its MIS encoding); the
  // normalized timing scores only break ties among equal-fill solutions.
  const double range = max_s - min_s;
  const double big = (range + 1.0) * static_cast<double>(batch.size() + 1);

  MisProblem& problem = scratch.problem;
  problem.weights.clear();
  problem.weights.reserve(vertices.size());
  for (const SolveVertex& v : vertices) {
    const CandidateMapping& m = results[v.task].ranked[v.cand];
    const double filled =
        static_cast<double>(m.children.size() - m.skips);
    problem.weights.push_back((filled + 1.0) * big + (v.score - min_s) +
                              1.0);
  }

  // Conflict edges via an inverted child index: only vertex pairs that
  // actually share a child generate edges, replacing the all-pairs
  // children scan (O(V^2 * |children|^2)) with O(V * |children|) index
  // construction plus output-sensitive edge generation. Edges are packed
  // (i, j) with i < j, sorted and deduped in one pass.
  ArenaVec<std::uint64_t>& edges = scratch.edges;
  edges.clear();
  const auto pack = [](std::uint32_t i, std::uint32_t j) {
    return (static_cast<std::uint64_t>(i) << 32) | j;
  };
  for (const auto& [begin, end] : scratch.task_ranges) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t j = i + 1; j < end; ++j) {
        edges.push_back(pack(static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j)));
      }
    }
  }
  ArenaVec<std::pair<SpanId, std::uint32_t>>& cv = scratch.child_verts;
  cv.clear();
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const CandidateMapping& m = results[vertices[i].task].ranked[vertices[i].cand];
    for (SpanId id : m.children) {
      if (id != kSkippedChild) cv.push_back({id, static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(cv.begin(), cv.end());
  for (std::size_t lo = 0; lo < cv.size();) {
    std::size_t hi = lo + 1;
    while (hi < cv.size() && cv[hi].first == cv[lo].first) ++hi;
    for (std::size_t a = lo; a < hi; ++a) {
      for (std::size_t b = a + 1; b < hi; ++b) {
        if (vertices[cv[a].second].task != vertices[cv[b].second].task) {
          edges.push_back(pack(cv[a].second, cv[b].second));
        }
      }
    }
    lo = hi;
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // Filling adjacency from the sorted unique edge list emits every list in
  // ascending order -- exactly what the old all-pairs scan produced, so the
  // MWIS input (and thus the solution) is identical.
  const std::size_t nv = vertices.size();
  scratch.degree.assign(nv, 0);
  for (const std::uint64_t e : edges) {
    ++scratch.degree[e >> 32];
    ++scratch.degree[e & 0xffffffffu];
  }
  problem.adjacency.resize(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    problem.adjacency[v].clear();
    problem.adjacency[v].reserve(scratch.degree[v]);
  }
  for (const std::uint64_t e : edges) {
    const auto i = static_cast<int>(e >> 32);
    const auto j = static_cast<int>(e & 0xffffffffu);
    problem.adjacency[static_cast<std::size_t>(i)].push_back(j);
    problem.adjacency[static_cast<std::size_t>(j)].push_back(i);
  }

  const MisSolution sol =
      SolveMwis(problem, ws.opts->params.mis_node_budget);
  ws.pm->mwis_solves.Inc();
  ws.pm->mwis_vertices.Inc(nv);
  ws.pm->mwis_edges.Inc(edges.size());
  ws.pm->mwis_bb_nodes.Inc(sol.nodes);
  if (!sol.optimal) {
    ws.pm->mwis_fallbacks.Inc();
    ++mis_fallbacks;
  }
  if (qstats != nullptr) {
    // Observation only: the extra greedy solve reads `problem` and never
    // feeds back into the chosen assignment, preserving bit-identical
    // output with quality collection on or off.
    qstats->solved = true;
    qstats->joint = true;
    qstats->optimal = sol.optimal;
    qstats->chosen_weight = sol.weight;
    qstats->greedy_weight = SolveMwisGreedy(problem).weight;
  }
  for (int vi : sol.chosen) {
    const SolveVertex& v = vertices[static_cast<std::size_t>(vi)];
    results[v.task].chosen = static_cast<int>(v.cand);
    for (SpanId id : results[v.task].ranked[v.cand].children) {
      if (id != kSkippedChild) used.insert(id);
    }
  }
}

/// Greedy assignment (ablation: no joint optimization): each span takes its
/// best-ranked conflict-free candidate, in arrival order.
void SolveGreedy(const Workspace& ws, std::vector<ParentResult>& results) {
  std::unordered_set<SpanId> used;
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    auto& r = results[t];
    for (std::size_t c = 0; c < r.ranked.size(); ++c) {
      bool conflict = false;
      for (SpanId id : r.ranked[c].children) {
        if (id != kSkippedChild && used.count(id) > 0) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      r.chosen = static_cast<int>(c);
      for (SpanId id : r.ranked[c].children) {
        if (id != kSkippedChild) used.insert(id);
      }
      break;
    }
  }
}

/// Resolves a mapping's children to spans (cold paths only; the ranking
/// hot path uses ParentTask::resolved).
std::vector<const Span*> Resolve(const Workspace& ws,
                                 const CandidateMapping& m) {
  std::vector<const Span*> out;
  out.reserve(m.children.size());
  for (SpanId id : m.children) {
    out.push_back(id == kSkippedChild ? nullptr : ws.span_by_id.at(id));
  }
  return out;
}

bool SameMixture(const GaussianMixture& a, const GaussianMixture& b) {
  if (a.num_components() != b.num_components()) return false;
  for (std::size_t i = 0; i < a.num_components(); ++i) {
    const GmmComponent& ca = a.components()[i];
    const GmmComponent& cb = b.components()[i];
    if (ca.weight != cb.weight || ca.mean != cb.mean ||
        ca.stddev != cb.stddev) {
      return false;
    }
  }
  return true;
}

/// Refits the delay model from the current chosen mappings (§4.1 step 6)
/// and returns the keys whose distribution actually changed. Keys whose
/// gap samples are identical to the previous fit are skipped outright
/// (FitGmmBicSweep is deterministic, so the fit would reproduce the
/// installed mixture); `last_fitted` tracks the samples behind each
/// installed fit.
std::vector<DelayKey> RefitModel(
    const Workspace& ws, const std::vector<ParentResult>& results,
    DelayModel& model,
    std::map<DelayKey, std::vector<double>>& last_fitted) {
  std::map<DelayKey, std::vector<double>> gaps;
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    const ParentResult& r = results[t];
    if (!r.Mapped()) continue;
    const CandidateMapping& m = r.ranked[static_cast<std::size_t>(r.chosen)];
    const auto samples =
        ExtractGaps(*ws.tasks[t].span, *ws.tasks[t].plan, Resolve(ws, m),
                    ws.opts->use_order_constraints);
    for (const GapSample& s : samples) gaps[s.key].push_back(s.gap);
  }

  GmmFitOptions fit = ws.opts->gmm;
  fit.max_components = ws.opts->params.max_gmm_components;
  fit.obs = &ws.pm->gmm;

  struct Work {
    const DelayKey* key;
    std::vector<double>* samples;
    GaussianMixture fitted;
  };
  std::vector<Work> work;
  for (auto& [key, samples] : gaps) {
    if (samples.size() < ws.opts->params.min_refit_samples) continue;
    auto it = last_fitted.find(key);
    if (it != last_fitted.end() && it->second == samples) continue;
    work.push_back(Work{&key, &samples, {}});
  }
  // Each fit is deterministic given its samples, so fitting in parallel
  // and installing in key order gives the same model as the serial path.
  ThreadPool::Run(ws.pool, work.size(), [&](std::size_t i) {
    work[i].fitted = FitGmmBicSweep(*work[i].samples, fit);
  });

  std::vector<DelayKey> dirty;
  for (Work& w : work) {
    const GaussianMixture* prev = model.Find(*w.key);
    const bool changed = prev == nullptr || !SameMixture(*prev, w.fitted);
    last_fitted[*w.key] = std::move(*w.samples);
    if (changed) {
      model.Install(*w.key, std::move(w.fitted));
      dirty.push_back(*w.key);
    }
  }
  ws.pm->delay_keys_refit.Inc(dirty.size());
  return dirty;
}

/// Fills the explain drill-down for the task matching
/// options.explain_parent, against the final delay model (identical to the
/// model behind the last ranking, so recomputed scores match the ranked
/// ones bit-for-bit). Cold path: runs once per container, after the
/// optimization, and only when the operator asked for an explanation.
void FillExplain(Workspace& ws, const std::vector<ParentResult>& results,
                 const std::vector<std::size_t>& batch_of_task,
                 const std::vector<Batch>& batches,
                 const std::vector<BatchRates>& batch_rates,
                 const DelayModel& model, ExplainCapture& out) {
  std::size_t t = ws.tasks.size();
  for (std::size_t i = 0; i < ws.tasks.size(); ++i) {
    if (ws.tasks[i].span->id == ws.opts->explain_parent) {
      t = i;
      break;
    }
  }
  if (t == ws.tasks.size()) return;  // Another container may own it.
  ParentTask& task = ws.tasks[t];
  const ParentResult& r = results[t];

  out.found = true;
  out.parent = task.span->id;
  out.service = task.span->callee;
  out.endpoint = task.span->endpoint;
  out.candidates_enumerated = task.all_candidates.size();
  out.batch = batch_of_task[t];
  out.batch_size = batches[out.batch].size();
  out.chosen_rank = r.chosen;

  // Rebuild the exact scoring context of the final ranking iteration.
  ScoringContext ctx;
  ctx.model = &model;
  ctx.use_order_constraints = ws.opts->use_order_constraints;
  if (ws.opts->thread_affinity == OptimizerOptions::ThreadAffinity::kSoft) {
    ctx.thread_match_bonus = ws.opts->thread_match_bonus;
  }
  BuildPositionScores(ws, task, batch_rates[batch_of_task[t]], model, ctx);
  ctx.positions = &task.positions;
  ctx.position_scores = &task.pos_scores;
  const DelayModel::DistView response = model.View(
      DelayKey::ResponseGap(task.span->callee, task.span->endpoint));
  ctx.response_dist = response.mixture;
  ctx.response_max_log_pdf = response.max_log_pdf;

  // Re-rank all enumerated candidates with the ranking comparator, so the
  // explain rows carry the same ranks the optimizer saw.
  const std::size_t n = task.all_candidates.size();
  const std::size_t npos = task.positions.size();
  std::vector<std::pair<double, std::uint32_t>> order(n);
  for (std::size_t c = 0; c < n; ++c) {
    order[c] = {ScoreMappingFlat(*task.span, *task.plan,
                                 task.resolved.data() + c * npos, ctx),
                static_cast<std::uint32_t>(c)};
  }
  std::sort(order.begin(), order.end(),
            [&task](const std::pair<double, std::uint32_t>& a,
                    const std::pair<double, std::uint32_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return task.all_candidates[a.second].children <
                     task.all_candidates[b.second].children;
            });

  const std::size_t cap = std::min(n, kExplainCandidateCap);
  out.candidates_shown = cap;
  for (std::size_t j = 0; j < cap; ++j) {
    const CandidateMapping& m = task.all_candidates[order[j].second];
    ExplainCandidate row;
    row.rank = j;
    row.score = order[j].first;
    row.chosen = r.chosen >= 0 && static_cast<std::size_t>(r.chosen) == j;
    row.in_top_k = j < r.ranked.size();
    row.skips = m.skips;
    row.children = m.children;
    row.breakdown =
        ExplainMapping(*task.span, *task.plan, Resolve(ws, m), ctx);
    out.candidates.push_back(std::move(row));
  }

  // Conflict neighbors: parents of the same batch whose kept candidates
  // contest at least one of this parent's kept candidate children.
  std::set<SpanId> mine;
  for (const CandidateMapping& m : r.ranked) {
    for (SpanId id : m.children) {
      if (id != kSkippedChild) mine.insert(id);
    }
  }
  const Batch& batch = batches[out.batch];
  for (std::size_t u = batch.begin; u < batch.end; ++u) {
    if (u == t) continue;
    std::set<SpanId> shared;
    for (const CandidateMapping& m : results[u].ranked) {
      for (SpanId id : m.children) {
        if (id != kSkippedChild && mine.count(id) > 0) shared.insert(id);
      }
    }
    if (shared.empty()) continue;
    ExplainConflict c;
    c.parent = ws.tasks[u].span->id;
    c.service = ws.tasks[u].span->callee;
    c.endpoint = ws.tasks[u].span->endpoint;
    c.shared_children = shared.size();
    out.conflicts.push_back(std::move(c));
  }
}

}  // namespace

void ContainerResult::AppendAssignment(ParentAssignment& out) const {
  for (const ParentResult& r : parents) {
    if (!r.Mapped()) continue;
    const CandidateMapping& m = r.ranked[static_cast<std::size_t>(r.chosen)];
    for (SpanId child : m.children) {
      if (child != kSkippedChild) out[child] = r.parent;
    }
  }
  for (const auto& [child, parent] : adopted) out[child] = parent;
}


ContainerResult OptimizeContainer(const ContainerView& view,
                                  const CallGraph& graph,
                                  const OptimizerOptions& options) {
  Workspace ws;
  ws.view = &view;
  ws.graph = &graph;
  ws.opts = &options;
  ws.pool = options.pool;
  static const obs::PipelineMetrics kInertMetrics;
  const obs::PipelineMetrics& pm =
      options.metrics != nullptr ? *options.metrics : kInertMetrics;
  ws.pm = &pm;
  const auto timer = [&pm](obs::Stage s) {
    const auto i = static_cast<std::size_t>(s);
    return obs::StageTimer(pm.stage_wall_ns[i], pm.stage_cpu_ns[i]);
  };

  ContainerResult result;
  result.instance = view.instance;

  ws.fast_path = options.fast_data_path;
  {
    auto t = timer(obs::Stage::kSetup);
    BuildPools(ws);
    BuildTasks(ws);
    if (!ws.tasks.empty()) DetectDynamism(ws);
    if (ws.fast_path && !ws.tasks.empty()) {
      // Pool spans are final after task construction (interning done), so
      // the SoA columns can be extracted once for the whole optimization.
      ws.pool_columns.resize(ws.pools.size());
      for (std::size_t p = 0; p < ws.pools.size(); ++p) {
        ws.pool_columns[p].Build(ws.pools.spans[p], &ws.names);
      }
    }
  }
  result.leaf_parents = ws.leaf_parents;
  pm.parents.Inc(ws.tasks.size());
  pm.parents_leaf.Inc(ws.leaf_parents);
  if (ws.tasks.empty()) return result;

  if (ws.dynamism_active) {
    pm.dynamism_containers.Inc();
    std::uint64_t budget = 0;
    for (const std::size_t b : ws.skip_budget) budget += b;
    pm.skip_budget.Inc(budget);
  }

  {
    auto t = timer(obs::Stage::kEnumerate);
    EnumerateAll(ws);
  }

  BatchingStats bstats;
  std::vector<Batch> batches;
  {
    auto t = timer(obs::Stage::kBatch);
    batches =
        MakeBatches(ws.task_spans, options.params.max_batch_size, &bstats);
  }
  result.batches = bstats.batches;
  result.imperfect_batches = bstats.imperfect;
  pm.batches.Inc(bstats.batches);
  pm.batches_imperfect.Inc(bstats.imperfect);
  for (const Batch& b : batches) pm.batch_size.Observe(b.size());

  DelayModel model;
  {
    auto t = timer(obs::Stage::kSeed);
    model = BuildSeeds(ws);
  }
  pm.delay_keys_seeded.Inc(model.size());

  // Per-batch skip budgets (water-filling, §4.2) and task->batch lookup.
  std::vector<BatchRates> batch_rates;
  {
    auto t = timer(obs::Stage::kAllocate);
    batch_rates = AllocateSkips(ws, batches);
  }
  std::vector<std::size_t> batch_of_task(ws.tasks.size(), 0);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (std::size_t t = batches[b].begin; t < batches[b].end; ++t) {
      batch_of_task[t] = b;
    }
  }

  // Independent runs of batches: a trailing perfect cut ends a run, and
  // Theorem A.1 guarantees batches across such a cut share no candidate
  // children -- so runs can be solved concurrently against private `used`
  // sets with no cross-run exclusions lost. Imperfect (size-forced) cuts
  // keep their batches in one run, solved sequentially as before.
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  std::size_t run_begin = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (batches[b].perfect) {
      runs.push_back({run_begin, b + 1});
      run_begin = b + 1;
    }
  }
  if (run_begin < batches.size()) {
    runs.push_back({run_begin, batches.size()});
  }
  pm.solve_runs.Inc(runs.size());

  std::vector<ParentResult> results(ws.tasks.size());
  for (std::size_t t = 0; t < ws.tasks.size(); ++t) {
    results[t].parent = ws.tasks[t].span->id;
    results[t].batch = batch_of_task[t];
    results[t].candidates_considered = ws.tasks[t].all_candidates.size();
  }
  if (options.collect_quality) {
    result.batch_stats.assign(batches.size(), ContainerResult::BatchStats{});
  }

  const std::size_t iterations =
      options.iterate ? std::max<std::size_t>(options.params.iterations, 1)
                      : 1;
  std::map<DelayKey, std::vector<double>> last_fitted;
  std::set<HandlerPair> dirty_handlers;
  bool incremental = false;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    pm.iterations.Inc();
    {
      auto t = timer(obs::Stage::kRank);
      RankCandidates(ws, model, batch_of_task, batch_rates,
                     incremental ? &dirty_handlers : nullptr, results);
    }
    for (ParentResult& r : results) r.chosen = -1;
    {
      auto t = timer(obs::Stage::kSolve);
      if (options.use_joint_optimization) {
        struct RunArenaStats {
          std::size_t high = 0;
          std::size_t reserved = 0;
          std::uint64_t allocs = 0;
        };
        std::vector<std::size_t> fallbacks(runs.size(), 0);
        std::vector<RunArenaStats> run_arena(runs.size());
        ThreadPool::Run(ws.pool, runs.size(), [&](std::size_t r) {
          std::unordered_set<SpanId> used;
          // Private arena per run: all conflict-graph scratch of the run's
          // batches bump-allocates here and is released wholesale when the
          // run ends (glibc then hands the same hot pages to the next
          // run). Stats go to per-run slots, folded below in run order, so
          // metric totals are identical for any pool size.
          ArenaAllocator arena(16 * 1024);
          SolveScratch scratch(&arena);
          for (std::size_t b = runs[r].first; b < runs[r].second; ++b) {
            SolveBatch(ws, batches[b], results, used, scratch, fallbacks[r],
                       result.batch_stats.empty() ? nullptr
                                                  : &result.batch_stats[b]);
          }
          run_arena[r] = {arena.high_water(), arena.reserved(),
                          arena.allocations()};
        });
        for (const std::size_t f : fallbacks) result.mis_fallbacks += f;
        for (const RunArenaStats& s : run_arena) {
          pm.arena_scratch_bytes.Inc(s.high);
          pm.arena_allocations.Inc(s.allocs);
          pm.arena_high_water.Observe(s.high);
          pm.arena_reserved.Observe(s.reserved);
        }
      } else {
        SolveGreedy(ws, results);
        for (ContainerResult::BatchStats& bs : result.batch_stats) {
          bs = ContainerResult::BatchStats{};
          bs.joint = false;
        }
      }
    }
    if (iter + 1 < iterations) {
      std::vector<DelayKey> dirty;
      {
        auto t = timer(obs::Stage::kRefit);
        dirty = RefitModel(ws, results, model, last_fitted);
      }
      // Convergence: an unchanged model reproduces this iteration's
      // ranking and solution exactly, so further rounds are no-ops.
      if (dirty.empty()) {
        pm.converged.Inc();
        break;
      }
      dirty_handlers.clear();
      for (const DelayKey& key : dirty) {
        dirty_handlers.insert(HandlerPair{key.service, key.endpoint});
      }
      incremental = true;
    }
  }

  // Final model shape and per-parent outcomes (observation only).
  const DelayModel::Summary shape = model.Summarize();
  pm.delay_keys_final.Inc(shape.keys);
  pm.delay_mixture_keys.Inc(shape.mixture_keys);
  pm.delay_components.Inc(shape.components);
  std::uint64_t mapped = 0, top = 0, skips = 0, candidates = 0;
  for (std::size_t t = 0; t < results.size(); ++t) {
    candidates += ws.tasks[t].all_candidates.size();
    const ParentResult& r = results[t];
    if (!r.Mapped()) continue;
    ++mapped;
    if (r.ChoseTop()) ++top;
    skips += r.ranked[static_cast<std::size_t>(r.chosen)].skips;
  }
  pm.parents_mapped.Inc(mapped);
  pm.parents_top_choice.Inc(top);
  pm.skips_chosen.Inc(skips);
  if (options.metrics != nullptr) {
    const std::string& service = view.instance.service;
    pm.ServiceParents(service).Inc(ws.tasks.size());
    pm.ServiceMapped(service).Inc(mapped);
    pm.ServiceTopChoice(service).Inc(top);
    pm.ServiceCandidates(service).Inc(candidates);
  }

  if (options.explain_out != nullptr &&
      options.explain_parent != kInvalidSpanId) {
    FillExplain(ws, results, batch_of_task, batches, batch_rates, model,
                *options.explain_out);
  }

  // Duplicate-twin adoption: retries and hedges materialize a second span
  // to the same (service, endpoint) under one true parent, but the plan
  // has a single position there, so the joint solve must leave the twin
  // unassigned. Rather than letting candidate sets explode by enumerating
  // multi-span positions, fold each unassigned pool span onto the parent
  // of its nearest *assigned* pool-mate when their sends lie within the
  // twin window and the orphan fits that parent's processing window.
  // Serial and deterministic; window 0 (the default) skips it entirely.
  const long long twin_window = options.params.duplicate_twin_window_ns;
  if (twin_window > 0) {
    struct AssignedChild {
      const Span* child;
      const Span* parent;
    };
    std::vector<std::vector<AssignedChild>> assigned_by_pool(
        ws.pools.size());
    std::unordered_set<SpanId> assigned_ids;
    for (std::size_t t = 0; t < results.size(); ++t) {
      const ParentResult& r = results[t];
      if (!r.Mapped()) continue;
      const ParentTask& task = ws.tasks[t];
      const CandidateMapping& m =
          r.ranked[static_cast<std::size_t>(r.chosen)];
      for (std::size_t i = 0; i < m.children.size(); ++i) {
        const SpanId child = m.children[i];
        if (child == kSkippedChild) continue;
        const auto it = ws.span_by_id.find(child);
        if (it == ws.span_by_id.end()) continue;
        assigned_ids.insert(child);
        assigned_by_pool[static_cast<std::size_t>(task.position_pool[i])]
            .push_back({it->second, task.span});
      }
    }
    // Sorted pool-key order for a deterministic adopted vector; decisions
    // themselves are independent per orphan, so order only affects output
    // ordering.
    for (const auto& [key, pool_id] : ws.pools.ids) {
      const auto p = static_cast<std::size_t>(pool_id);
      if (assigned_by_pool[p].empty()) continue;
      for (const Span* orphan : ws.pools.spans[p]) {
        if (assigned_ids.count(orphan->id) > 0) continue;
        const AssignedChild* best = nullptr;
        long long best_gap = twin_window + 1;
        for (const AssignedChild& a : assigned_by_pool[p]) {
          const long long diff =
              static_cast<long long>(orphan->client_send) -
              static_cast<long long>(a.child->client_send);
          const long long gap = diff < 0 ? -diff : diff;
          if (gap > twin_window) continue;
          const long long slack =
              options.params.SlackFor(a.parent->callee, orphan->callee);
          if (orphan->client_send < a.parent->server_recv - slack ||
              orphan->client_recv > a.parent->server_send + slack) {
            continue;  // Twin does not fit the sibling's parent window.
          }
          if (best == nullptr || gap < best_gap ||
              (gap == best_gap && a.parent->id < best->parent->id)) {
            best = &a;
            best_gap = gap;
          }
        }
        if (best != nullptr) {
          result.adopted.emplace_back(orphan->id, best->parent->id);
        }
      }
    }
    std::sort(result.adopted.begin(), result.adopted.end());
  }

  result.parents = std::move(results);
  return result;
}

}  // namespace traceweaver
