// Online deployment mode (§5.3): streaming reconstruction over tumbling
// windows, enabling tail-based sampling -- hardened for production
// streams (DESIGN.md §4f, "Overload & recovery model").
//
// Spans are ingested as they complete. When the watermark (latest observed
// completion time) passes a window boundary plus a safety margin, the
// window is closed: all spans buffered so far form the candidate
// population, parents whose processing window lies inside the closed
// window are committed, and committed children leave the buffer so later
// windows cannot reuse them. The margin must exceed the app's worst-case
// response latency so every plausible candidate for a closing parent has
// arrived (the paper's guidance for window sizing).
//
// Resilience features on top of the paper's model:
//
//   * Bounded memory. `max_buffer_spans` / `max_buffer_bytes` cap the
//     span buffer. On breach the admission controller sheds whole
//     *oldest* windows first: every buffered span whose committing
//     timestamp falls at or before the oldest unclosed window boundary is
//     removed together and recorded as an explicit orphan. Because a
//     child's server_recv is never earlier than its parent's, a time-
//     prefix shed can never remove a child of a parent in a surviving
//     window -- later windows' candidate sets are untouched (the same cut
//     argument as Theorem A.1's run decomposition).
//
//   * Overload degradation ladder. When a window close exceeds
//     `window_close_deadline`, reconstruction parameters are degraded one
//     rung (Parameters::DegradedForOverload: shrink top-K, shrink batch
//     size, cap refinement iterations, drop exact MWIS to greedy); closes
//     finishing under half the deadline step back up, recovering full
//     fidelity when pressure subsides.
//
//   * Late / out-of-order input. Advance() watermarks may regress (they
//     clamp to the high-water mark and count the regression); spans
//     arriving after their window closed go to a bounded late-pool and
//     are either grafted into a committed parent's free (skipped) slot or
//     emitted as benign orphans.
//
//   * Checkpoint/restore. SaveCheckpoint()/LoadCheckpoint() serialize the
//     full streaming state (buffer, committed assignments, late pool,
//     graft slots, delay posteriors, watermark, ladder position) as a
//     CRC-guarded `traceweaver.checkpoint.v1` JSONL stream
//     (trace/checkpoint.h), so a killed serve loop resumes within one
//     window of where it died without losing or duplicating commitments.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/delay_model.h"
#include "core/skew_estimator.h"
#include "core/trace_weaver.h"
#include "obs/pipeline_metrics.h"
#include "obs/provenance.h"
#include "trace/span.h"

namespace traceweaver {

struct OnlineOptions {
  DurationNs window = Seconds(2);
  /// Extra wait beyond the window end before closing it; should exceed the
  /// maximum span duration.
  DurationNs margin = Millis(500);
  TraceWeaverOptions weaver;

  // --- Bounded memory / admission control (0 = unbounded). ---
  std::size_t max_buffer_spans = 0;
  std::size_t max_buffer_bytes = 0;

  /// Wall-time budget for one window close; exceeding it escalates the
  /// degradation ladder, finishing under half of it de-escalates. 0
  /// disables the ladder (always full fidelity, fully deterministic).
  DurationNs window_close_deadline = 0;

  // --- Late / out-of-order handling. ---
  /// Bounded late-pool capacity; overflow drops the oldest entries as
  /// orphans.
  std::size_t max_late_spans = 4096;
  /// How many windows a late span (and a committed parent's free slots)
  /// stay graftable before being expired.
  int graft_retention_windows = 2;

  /// Metric sink for the tw_online_* family (docs/METRICS.md). Null
  /// disables recording; behavior is identical either way. Not owned.
  obs::MetricsRegistry* metrics = nullptr;

  /// Decision-provenance sink (obs/provenance.h): every skew correction,
  /// admission drop, window shed, degraded solve, late graft/expiry is
  /// recorded against the span it affected. Null disables recording;
  /// assignments are bit-identical either way. Pending events serialize
  /// as `"ckpt":"prov"` records, and LoadCheckpoint repopulates the
  /// attached ledger. Not owned; must outlive the weaver.
  obs::ProvenanceLedger* provenance = nullptr;

  /// Feed every ingested span to the online skew estimator and shift its
  /// timestamps into the common clock frame before buffering (DESIGN.md
  /// §4i). Estimates warm up over the stream, so the earliest spans of a
  /// cold start see less correction; estimator state checkpoints with the
  /// rest of the streaming state, so restarts resume bit-identically.
  bool skew_correct = false;
};

struct WindowResult {
  TimeNs window_start = 0;
  TimeNs window_end = 0;
  /// Assignments committed by this window (child -> parent), including
  /// late-span grafts.
  ParentAssignment assignment;
  std::size_t parents_committed = 0;
  /// Degradation-ladder rung this window was optimized at (0 = full
  /// fidelity); meaningful only when window_close_deadline is set.
  int degradation_level = 0;
  /// True when the admission controller shed this window instead of
  /// optimizing it; `orphans` then lists every shed span.
  bool shed = false;
  /// Spans whose links are definitively lost (shed with a window,
  /// admission-dropped, or expired from the late pool) -- the benign
  /// orphan feed of the quality layer's suspicious/benign split.
  std::vector<SpanId> orphans;
  /// Late spans grafted into committed parents at this close.
  std::size_t late_grafted = 0;
  /// Wall time spent closing this window (drives the ladder).
  DurationNs close_wall_ns = 0;
  /// Portion of close_wall_ns spent servicing the late pool / graft
  /// slots (feeds the serve loop's self-trace stage breakdown).
  DurationNs graft_wall_ns = 0;
  /// Per-trace quality rows (grade, calibrated confidence) for every
  /// trace visible in the buffer at this close, filled iff
  /// OnlineOptions::weaver.compute_quality. Downstream consumers (the
  /// store commit hook) take the latest row per root: each close
  /// re-evaluates against the spans still buffered, so the row from the
  /// close that settles a trace is the authoritative one. Not serialized
  /// into checkpoints (shed/pending results carry no quality).
  std::vector<obs::TraceQuality> trace_quality;
};

class OnlineTraceWeaver {
 public:
  /// Schema tag of the checkpoint format (see trace/checkpoint.h).
  static constexpr const char* kCheckpointSchema =
      "traceweaver.checkpoint.v1";

  OnlineTraceWeaver(CallGraph graph, OnlineOptions options = {});
  ~OnlineTraceWeaver();
  OnlineTraceWeaver(OnlineTraceWeaver&&) noexcept;
  OnlineTraceWeaver& operator=(OnlineTraceWeaver&&) noexcept;

  /// Adds a completed span. Late spans (window already closed) are routed
  /// to the graft path; over-budget buffers shed oldest windows first.
  void Ingest(const Span& span);

  /// Advances the watermark; closes and returns every window whose end +
  /// margin is at or before `watermark`, preceded by any windows shed
  /// since the last call. A watermark below the high-water mark is
  /// clamped (never rolls state back) and counted as a regression.
  std::vector<WindowResult> Advance(TimeNs watermark);

  /// Closes all remaining windows regardless of watermark and drains the
  /// late pool (remaining entries become orphans).
  std::vector<WindowResult> Flush();

  /// Union of all assignments committed so far (including grafts).
  const ParentAssignment& assignment() const { return committed_; }

  std::size_t buffered() const { return buffer_.size(); }
  std::size_t buffered_bytes() const { return buffer_bytes_; }
  std::size_t late_pool_size() const { return late_pool_.size(); }
  int degradation_level() const { return level_; }
  TimeNs high_watermark() const { return high_watermark_; }

  /// Online estimate of one delay distribution, accumulated (Welford)
  /// from the gaps implied by committed assignments. Survives
  /// checkpoint/restore, so drift detection can span process restarts.
  struct DelayPosterior {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;  ///< Sum of squared deviations.

    double Variance() const {
      return count < 2 ? 0.0 : m2 / static_cast<double>(count - 1);
    }
  };
  const std::map<DelayKey, DelayPosterior>& delay_posteriors() const {
    return posteriors_;
  }

  /// Online skew state (active when OnlineOptions::skew_correct); survives
  /// checkpoint/restore as `"ckpt":"skew"` records.
  const SkewEstimator& skew_estimator() const { return skew_estimator_; }

  /// Monotone event counters, mirrored into the tw_online_* metric family
  /// when OnlineOptions::metrics is set.
  struct Stats {
    std::uint64_t ingested = 0;
    std::uint64_t windows_closed = 0;
    std::uint64_t parents_committed = 0;
    std::uint64_t windows_shed = 0;
    std::uint64_t spans_shed = 0;
    std::uint64_t admission_drops = 0;
    std::uint64_t late_spans = 0;
    std::uint64_t late_grafted = 0;
    std::uint64_t late_orphans = 0;
    std::uint64_t late_dropped = 0;
    std::uint64_t watermark_regressions = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t degrade_up_steps = 0;
    std::uint64_t degrade_down_steps = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Serializes the full streaming state as `traceweaver.checkpoint.v1`
  /// JSONL with a CRC-guarded footer. `extra` carries caller scalars
  /// (e.g. the serve loop's source offset) that round-trip untouched.
  void SaveCheckpoint(
      std::ostream& out,
      const std::map<std::string, std::uint64_t>& extra = {}) const;

  /// Replaces this weaver's state with a checkpoint previously written by
  /// SaveCheckpoint. The call graph and options are NOT serialized: the
  /// caller must construct the weaver with the same graph/options as the
  /// checkpointing process. Returns false (state untouched) on truncated,
  /// corrupted or schema-mismatched input, with a reason in *error.
  bool LoadCheckpoint(std::istream& in, std::string* error = nullptr,
                      std::map<std::string, std::uint64_t>* extra = nullptr);

 private:
  /// A skipped (free) position of a committed parent's chosen mapping: a
  /// late child matching its call site can still be grafted in.
  struct GraftSlot {
    SpanId parent = kInvalidSpanId;
    std::string parent_service;   ///< Callee of the parent span.
    std::string parent_endpoint;
    TimeNs server_recv = 0;
    TimeNs server_send = 0;
    int callee_replica = 0;       ///< Children must be sent from it.
    int stage = 0;
    int call = 0;
    std::string call_service;     ///< The open position's call site.
    std::string call_endpoint;
  };

  struct LateSpan {
    Span span;
    TimeNs deadline = 0;  ///< Orphaned once next_window_start_ passes it.
  };

  WindowResult CloseWindow(TimeNs window_start, TimeNs window_end);
  /// Ingest() after optional skew correction (the shared buffering path).
  void IngestCorrected(const Span& span);
  void HandleLate(const Span& span);
  /// Feasibility slack for grafting on the (caller, callee) edge; with
  /// skew correction on this is derived from the estimator's *current*
  /// state (not the map cached at the last window close) so resumes stay
  /// bit-identical.
  long long GraftSlack(const std::string& caller,
                       const std::string& callee) const;
  /// Grafts `span` into the best feasible free slot; returns the parent
  /// id or kInvalidSpanId.
  SpanId TryGraft(const Span& span);
  /// Retries the late pool against slots opened by new commits, expires
  /// stale entries into `result`, prunes stale graft slots.
  void ServiceLatePool(WindowResult& result);
  void EnforceBudget();
  void ShedOldestWindow();
  bool OverBudget() const;
  void RecordPosterior(const Span& parent, const InvocationPlan& plan,
                       const CandidateMapping& mapping,
                       const std::map<SpanId, const Span*>& by_id);
  void UpdateBufferGauges();
  TraceWeaver& WeaverForLevel();

  CallGraph graph_;
  OnlineOptions options_;
  obs::OnlineMetrics metrics_;
  obs::ProvRecorder prov_;
  std::vector<Span> buffer_;
  std::size_t buffer_bytes_ = 0;
  ParentAssignment committed_;
  TimeNs next_window_start_ = 0;
  bool started_ = false;
  TimeNs high_watermark_ = 0;
  int level_ = 0;
  std::vector<LateSpan> late_pool_;
  std::vector<GraftSlot> graft_slots_;
  /// Shed windows and admission-drop orphans awaiting delivery with the
  /// next Advance()/Flush() output.
  std::vector<WindowResult> pending_results_;
  std::vector<SpanId> pending_orphans_;
  std::map<DelayKey, DelayPosterior> posteriors_;
  SkewEstimator skew_estimator_;
  Stats stats_;
  /// Cached weaver, rebuilt when the degradation level changes (avoids
  /// re-copying the graph and re-spawning the pool every window).
  std::unique_ptr<TraceWeaver> weaver_cache_;
  int weaver_cache_level_ = -1;
};

}  // namespace traceweaver
