// Online deployment mode (§5.3): streaming reconstruction over tumbling
// windows, enabling tail-based sampling.
//
// Spans are ingested as they complete. When the watermark (latest observed
// completion time) passes a window boundary plus a safety margin, the
// window is closed: all spans buffered so far form the candidate
// population, parents whose processing window lies inside the closed
// window are committed, and committed children leave the buffer so later
// windows cannot reuse them. The margin must exceed the app's worst-case
// response latency so every plausible candidate for a closing parent has
// arrived (the paper's guidance for window sizing).
#pragma once

#include <vector>

#include "core/trace_weaver.h"
#include "trace/span.h"

namespace traceweaver {

struct OnlineOptions {
  DurationNs window = Seconds(2);
  /// Extra wait beyond the window end before closing it; should exceed the
  /// maximum span duration.
  DurationNs margin = Millis(500);
  TraceWeaverOptions weaver;
};

struct WindowResult {
  TimeNs window_start = 0;
  TimeNs window_end = 0;
  /// Assignments committed by this window (child -> parent).
  ParentAssignment assignment;
  std::size_t parents_committed = 0;
};

class OnlineTraceWeaver {
 public:
  OnlineTraceWeaver(CallGraph graph, OnlineOptions options = {});

  /// Adds a completed span to the buffer.
  void Ingest(const Span& span);

  /// Advances the watermark; closes and returns every window whose end +
  /// margin is at or before `watermark`.
  std::vector<WindowResult> Advance(TimeNs watermark);

  /// Closes all remaining windows regardless of watermark.
  std::vector<WindowResult> Flush();

  /// Union of all assignments committed so far.
  const ParentAssignment& assignment() const { return committed_; }

  std::size_t buffered() const { return buffer_.size(); }

 private:
  WindowResult CloseWindow(TimeNs window_start, TimeNs window_end);

  CallGraph graph_;
  OnlineOptions options_;
  std::vector<Span> buffer_;
  ParentAssignment committed_;
  TimeNs next_window_start_ = 0;
  bool started_ = false;
};

}  // namespace traceweaver
