// Evaluation metrics: span-level, end-to-end, top-K, and per-service
// reconstruction accuracy against simulator ground truth (§6 methodology).
//
// The algorithms never see ground truth; these functions compare their
// output against the true_parent links the simulator carried out-of-band.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/trace_weaver.h"
#include "trace/trace.h"

namespace traceweaver {

struct AccuracyReport {
  /// Non-root spans whose true parent exists in the population.
  std::size_t spans_considered = 0;
  std::size_t spans_correct = 0;

  /// Traces (root spans) whose every descendant link was reconstructed.
  std::size_t traces_considered = 0;
  std::size_t traces_correct = 0;

  double SpanAccuracy() const {
    return spans_considered == 0
               ? 1.0
               : static_cast<double>(spans_correct) /
                     static_cast<double>(spans_considered);
  }
  /// End-to-end tracing accuracy as reported in Figs. 4 and 6.
  double TraceAccuracy() const {
    return traces_considered == 0
               ? 1.0
               : static_cast<double>(traces_correct) /
                     static_cast<double>(traces_considered);
  }
};

/// Compares a predicted parent assignment against ground truth.
AccuracyReport Evaluate(const std::vector<Span>& spans,
                        const ParentAssignment& predicted);

/// Fraction of parent spans (with at least one true child) whose full true
/// child set appears among their top-K ranked candidate mappings
/// (§6.2.1 "Top K accuracy").
double TopKParentAccuracy(const std::vector<Span>& spans,
                          const TraceWeaverOutput& output, std::size_t k);

/// End-to-end top-K: fraction of traces where every parent span's true
/// child set is within its top-K candidates.
double TopKTraceAccuracy(const std::vector<Span>& spans,
                         const TraceWeaverOutput& output, std::size_t k);

/// Span-level accuracy per mapping service (the service whose optimizer
/// assigned the child, i.e. the child's caller). Input to Fig. 6b.
std::map<std::string, double> PerServiceAccuracy(
    const std::vector<Span>& spans, const ParentAssignment& predicted);

}  // namespace traceweaver
