// Public facade: the TraceWeaver reconstruction system (§3).
//
// Construct with a CallGraph (operator-provided or inferred from test
// traces via callgraph/inference.h), then feed a span population captured
// non-intrusively; out come reconstructed request traces: a parent
// assignment, per-span ranked candidate mappings (top-K), and per-service
// confidence scores.
//
// Typical use:
//   CallGraph graph = InferCallGraph(test_spans);
//   TraceWeaver weaver(graph);
//   TraceWeaverOutput out = weaver.Reconstruct(production_spans);
//   TraceForest forest(production_spans, out.assignment);
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/mapper.h"
#include "callgraph/call_graph.h"
#include "core/optimizer.h"
#include "trace/trace.h"

namespace traceweaver::obs {
class MetricsRegistry;    // obs/metrics.h
struct PipelineMetrics;   // obs/pipeline_metrics.h
}

namespace traceweaver {

class ThreadPool;

struct TraceWeaverOptions {
  OptimizerOptions optimizer;
  /// Worker threads for reconstruction, shared across every level of the
  /// pipeline: independent containers (§6.5), and within a container the
  /// per-span enumeration/ranking, per-run batch solving, and per-key GMM
  /// refits (see DESIGN.md, "Concurrency model"). Output is bit-identical
  /// for any thread count. 1 = fully serial, no pool is created.
  std::size_t num_threads = 1;
  /// Metrics registry for pipeline observability (see DESIGN.md,
  /// "Observability model"): every Reconstruct call records stage timings,
  /// work counters and distributions into it. Null (the default) disables
  /// recording; reconstruction output is bit-identical either way. Not
  /// owned; must outlive the TraceWeaver.
  obs::MetricsRegistry* metrics = nullptr;
};

struct TraceWeaverOutput {
  /// child span id -> inferred parent span id (kInvalidSpanId: unmapped or
  /// root).
  ParentAssignment assignment;
  /// Per-container reconstruction detail (ranked candidates, statistics).
  std::vector<ContainerResult> containers;

  /// Per-service confidence score (§6.3.2): 1 minus the fraction of
  /// incoming spans that were unmapped or not given their top-ranked
  /// mapping.
  std::map<std::string, double> ConfidenceByService() const;
};

class TraceWeaver : public Mapper {
 public:
  explicit TraceWeaver(CallGraph graph, TraceWeaverOptions options = {});
  ~TraceWeaver() override;
  TraceWeaver(TraceWeaver&&) noexcept;
  TraceWeaver& operator=(TraceWeaver&&) noexcept;

  std::string name() const override { return "TraceWeaver"; }

  /// Mapper interface: uses input.call_graph when provided, else the
  /// constructor-supplied graph.
  ParentAssignment Map(const MapperInput& input) override;

  /// Full reconstruction with ranked candidates and statistics.
  TraceWeaverOutput Reconstruct(const std::vector<Span>& spans) const;

  const CallGraph& call_graph() const { return graph_; }
  const TraceWeaverOptions& options() const { return options_; }

 private:
  CallGraph graph_;
  TraceWeaverOptions options_;
  /// Shared worker pool (created iff num_threads > 1), reused across
  /// Reconstruct calls and all pipeline levels within them.
  std::unique_ptr<ThreadPool> pool_;
  /// Pre-registered metric handles (created iff options.metrics is set).
  std::unique_ptr<obs::PipelineMetrics> metrics_;
};

}  // namespace traceweaver
