// Public facade: the TraceWeaver reconstruction system (§3).
//
// Construct with a CallGraph (operator-provided or inferred from test
// traces via callgraph/inference.h), then feed a span population captured
// non-intrusively; out come reconstructed request traces: a parent
// assignment, per-span ranked candidate mappings (top-K), and per-service
// confidence scores.
//
// Typical use:
//   CallGraph graph = InferCallGraph(test_spans);
//   TraceWeaver weaver(graph);
//   TraceWeaverOutput out = weaver.Reconstruct(production_spans);
//   TraceForest forest(production_spans, out.assignment);
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/mapper.h"
#include "callgraph/call_graph.h"
#include "core/optimizer.h"
#include "obs/quality.h"
#include "trace/trace.h"

namespace traceweaver::obs {
class MetricsRegistry;    // obs/metrics.h
struct PipelineMetrics;   // obs/pipeline_metrics.h
}

namespace traceweaver {

class ThreadPool;

struct TraceWeaverOptions {
  OptimizerOptions optimizer;
  /// Worker threads for reconstruction, shared across every level of the
  /// pipeline: independent containers (§6.5), and within a container the
  /// per-span enumeration/ranking, per-run batch solving, and per-key GMM
  /// refits (see DESIGN.md, "Concurrency model"). Output is bit-identical
  /// for any thread count. 1 = fully serial, no pool is created.
  std::size_t num_threads = 1;
  /// Metrics registry for pipeline observability (see DESIGN.md,
  /// "Observability model"): every Reconstruct call records stage timings,
  /// work counters and distributions into it. Null (the default) disables
  /// recording; reconstruction output is bit-identical either way. Not
  /// owned; must outlive the TraceWeaver.
  obs::MetricsRegistry* metrics = nullptr;
  /// Compute the trace-quality report (obs/quality.h) after stitching:
  /// per-assignment confidence, per-trace grades, tw_quality_* metrics.
  /// Observation only -- reconstruction output is bit-identical with the
  /// subsystem on or off.
  bool compute_quality = false;
  obs::QualityOptions quality;
};

struct TraceWeaverOutput {
  /// child span id -> inferred parent span id (kInvalidSpanId: unmapped or
  /// root).
  ParentAssignment assignment;
  /// Per-container reconstruction detail (ranked candidates, statistics).
  std::vector<ContainerResult> containers;

  /// Trace-quality report (filled iff TraceWeaverOptions::compute_quality).
  obs::QualityReport quality;

  /// Per-service confidence score, exactly the paper's §6.3.2 metric:
  ///   confidence(s) = |{incoming spans of s whose *top-ranked* candidate
  ///                     mapping was selected}| / |{incoming spans of s}|.
  /// Equivalently 1 minus the fraction of incoming spans that were
  /// unmapped or assigned a lower-ranked mapping by the joint MWIS
  /// optimization. Services with zero incoming spans are omitted from the
  /// map (never reported as a vacuous 1.0). The paper reports this value
  /// correlates with per-service accuracy at r = 0.89; the calibrated
  /// per-assignment generalization lives in obs/quality.h.
  std::map<std::string, double> ConfidenceByService() const;
};

class TraceWeaver : public Mapper {
 public:
  explicit TraceWeaver(CallGraph graph, TraceWeaverOptions options = {});
  ~TraceWeaver() override;
  TraceWeaver(TraceWeaver&&) noexcept;
  TraceWeaver& operator=(TraceWeaver&&) noexcept;

  std::string name() const override { return "TraceWeaver"; }

  /// Mapper interface: uses input.call_graph when provided, else the
  /// constructor-supplied graph.
  ParentAssignment Map(const MapperInput& input) override;

  /// Full reconstruction with ranked candidates and statistics.
  TraceWeaverOutput Reconstruct(const std::vector<Span>& spans) const;

  const CallGraph& call_graph() const { return graph_; }
  const TraceWeaverOptions& options() const { return options_; }

 private:
  CallGraph graph_;
  TraceWeaverOptions options_;
  /// Shared worker pool (created iff num_threads > 1), reused across
  /// Reconstruct calls and all pipeline levels within them.
  std::unique_ptr<ThreadPool> pool_;
  /// Pre-registered metric handles (created iff options.metrics is set).
  std::unique_ptr<obs::PipelineMetrics> metrics_;
  /// tw_quality_* handles (created iff metrics set and compute_quality).
  std::unique_ptr<obs::QualityMetrics> quality_metrics_;
};

}  // namespace traceweaver
