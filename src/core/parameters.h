// TraceWeaver's tunable parameters (paper Table 1) plus implementation
// knobs with conservative defaults.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <utility>

namespace traceweaver {

struct Parameters {
  /// Max size of an optimization batch (Table 1: B = 30; §4.1 step 2 uses
  /// 100 as the hard threshold -- we expose the Table 1 default).
  std::size_t max_batch_size = 30;

  /// Max candidate mappings kept per incoming span (Table 1: K = 5).
  std::size_t max_candidates_per_span = 5;

  /// Max GMM components for delay modeling (Table 1: C = 5). The paper
  /// sweeps 1..20 with BIC; C caps the sweep.
  std::size_t max_gmm_components = 5;

  /// Buckets used for the seed variance estimate (Table 1: R = 10).
  std::size_t seed_buckets = 10;

  /// Iterations of the joint distribution/mapping refinement (§4.1 step 6).
  /// The paper reports quick convergence; 3 is enough in practice.
  std::size_t iterations = 3;

  /// Known capture-sampling keep probability of the span stream (head or
  /// span-level sampling upstream of TraceWeaver). 1.0 (the default)
  /// means "unsampled" and leaves every code path byte-identical to a
  /// build without the knob. Below 1.0, sampled-out children become
  /// *expected absences*: dynamism stays engaged with a skip budget
  /// floored at ceil(X_p * (1 - rate)) per pool, the fallback skip/keep
  /// log-probabilities are re-derived for the thinned stream
  /// (AdjustForSampling, core/candidates.h), and the quality layer
  /// relaxes skip and orphan penalties accordingly.
  double sampling_rate = 1.0;

  /// Duplicate-twin adoption window (ns) for retry/hedge duplicates: after
  /// the joint solve, an *unassigned* child whose (service, endpoint)
  /// pool-mate was assigned to a parent, and whose client_send lies within
  /// this window of that sibling's, is adopted by the same parent when it
  /// fits the parent's processing window. 0 (default) disables adoption
  /// and keeps assignments byte-identical to pre-twin builds.
  long long duplicate_twin_window_ns = 0;

  // ------- implementation knobs (not in Table 1) -------

  /// Per-position branching cap during candidate enumeration; feasible
  /// children closest in time are explored first.
  std::size_t enumeration_branch_cap = 8;

  /// Cap on complete candidate mappings enumerated per incoming span
  /// before ranking to top K.
  std::size_t enumeration_total_cap = 96;

  /// Node budget for the exact branch-and-bound MWIS solver before falling
  /// back to greedy + local search.
  std::size_t mis_node_budget = 200000;

  /// Minimum gap samples for a delay key before its distribution is refit
  /// on iterations >= 2 (smaller sets keep the seed).
  std::size_t min_refit_samples = 8;

  /// Window (ns) over which outgoing/incoming discrepancies are totaled to
  /// size the skip-span budget (§4.2 step 1; paper: ~10 s).
  long long dynamism_window_ns = 10'000'000'000LL;

  /// Feasibility-constraint slack (ns) tolerating capture-clock jitter
  /// between vantage points; raise to ~4x the expected jitter stddev when
  /// capture clocks are noisy.
  long long constraint_slack_ns = 0;

  /// Per-edge override of constraint_slack_ns, keyed (caller service,
  /// callee service): the slack applied when enumerating children of that
  /// edge. Derived from observed per-pair skew spread
  /// (SkewEstimator::EdgeSlacks), so one noisy pair no longer forces the
  /// global slack wide open for every edge. Edges not listed fall back to
  /// constraint_slack_ns.
  std::map<std::pair<std::string, std::string>, long long> edge_slack_ns;

  /// Effective slack for children on edge (caller service -> callee
  /// service).
  long long SlackFor(const std::string& caller,
                     const std::string& callee) const {
    const auto it = edge_slack_ns.find({caller, callee});
    return it != edge_slack_ns.end() ? it->second : constraint_slack_ns;
  }

  /// Returns a copy degraded for overload level `level` (the online
  /// degradation ladder, DESIGN.md §4f). Steps are cumulative and ordered
  /// by accuracy cost per CPU saved:
  ///   level >= 1: top-K shrunk to 3 (ranking + MWIS vertices)
  ///   level >= 2: max batch size shrunk to 15 (solve cost ~ B^2)
  ///   level >= 3: refinement capped at 2 iterations (GMM refits)
  ///   level >= 4: exact B&B MWIS dropped (budget 0 -> greedy + 1-swap)
  /// Level 0 (and negative) returns *this unchanged; levels above
  /// kMaxOverloadLevel clamp.
  Parameters DegradedForOverload(int level) const {
    Parameters p = *this;
    if (level >= 1) {
      p.max_candidates_per_span = std::min<std::size_t>(
          p.max_candidates_per_span, 3);
    }
    if (level >= 2) {
      p.max_batch_size = std::min<std::size_t>(p.max_batch_size, 15);
    }
    if (level >= 3) {
      p.iterations = std::min<std::size_t>(p.iterations, 2);
    }
    if (level >= 4) {
      p.mis_node_budget = 0;  // Every solve falls back to greedy.
    }
    return p;
  }
};

/// Deepest rung of the overload degradation ladder.
inline constexpr int kMaxOverloadLevel = 4;

}  // namespace traceweaver
