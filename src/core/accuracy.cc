#include "core/accuracy.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace traceweaver {
namespace {

/// True children per parent span id (only spans present in the population).
std::unordered_map<SpanId, std::set<SpanId>> TrueChildren(
    const std::vector<Span>& spans) {
  std::unordered_set<SpanId> known;
  known.reserve(spans.size());
  for (const Span& s : spans) known.insert(s.id);

  std::unordered_map<SpanId, std::set<SpanId>> children;
  for (const Span& s : spans) {
    if (s.true_parent != kInvalidSpanId && known.count(s.true_parent) > 0) {
      children[s.true_parent].insert(s.id);
    }
  }
  return children;
}

std::set<SpanId> MappedChildren(const CandidateMapping& m) {
  std::set<SpanId> out;
  for (SpanId id : m.children) {
    if (id != kSkippedChild) out.insert(id);
  }
  return out;
}

}  // namespace

AccuracyReport Evaluate(const std::vector<Span>& spans,
                        const ParentAssignment& predicted) {
  AccuracyReport report;

  std::unordered_set<SpanId> known;
  known.reserve(spans.size());
  for (const Span& s : spans) known.insert(s.id);

  std::unordered_map<TraceId, bool> trace_ok;
  for (const Span& s : spans) {
    if (s.IsRoot()) {
      trace_ok.emplace(s.true_trace, true);
      continue;
    }
    if (s.true_parent == kInvalidSpanId || known.count(s.true_parent) == 0) {
      continue;  // Parent outside the captured population.
    }
    ++report.spans_considered;
    SpanId pred = kInvalidSpanId;
    if (auto it = predicted.find(s.id); it != predicted.end()) {
      pred = it->second;
    }
    const bool correct = pred == s.true_parent;
    if (correct) {
      ++report.spans_correct;
    } else {
      trace_ok[s.true_trace] = false;
    }
  }

  for (const auto& [trace, ok] : trace_ok) {
    ++report.traces_considered;
    if (ok) ++report.traces_correct;
  }
  return report;
}

double TopKParentAccuracy(const std::vector<Span>& spans,
                          const TraceWeaverOutput& output, std::size_t k) {
  const auto truth = TrueChildren(spans);

  std::size_t considered = 0;
  std::size_t hit = 0;
  for (const ContainerResult& c : output.containers) {
    for (const ParentResult& p : c.parents) {
      auto it = truth.find(p.parent);
      if (it == truth.end()) continue;  // Parent with no true children.
      ++considered;
      const std::size_t limit = std::min(k, p.ranked.size());
      for (std::size_t i = 0; i < limit; ++i) {
        if (MappedChildren(p.ranked[i]) == it->second) {
          ++hit;
          break;
        }
      }
    }
  }
  return considered == 0 ? 1.0
                         : static_cast<double>(hit) /
                               static_cast<double>(considered);
}

double TopKTraceAccuracy(const std::vector<Span>& spans,
                         const TraceWeaverOutput& output, std::size_t k) {
  const auto truth = TrueChildren(spans);

  std::unordered_map<SpanId, TraceId> trace_of;
  for (const Span& s : spans) trace_of[s.id] = s.true_trace;

  std::unordered_map<TraceId, bool> trace_ok;
  for (const Span& s : spans) trace_ok.emplace(s.true_trace, true);

  for (const ContainerResult& c : output.containers) {
    for (const ParentResult& p : c.parents) {
      auto it = truth.find(p.parent);
      if (it == truth.end()) continue;
      bool hit = false;
      const std::size_t limit = std::min(k, p.ranked.size());
      for (std::size_t i = 0; i < limit; ++i) {
        if (MappedChildren(p.ranked[i]) == it->second) {
          hit = true;
          break;
        }
      }
      if (!hit) trace_ok[trace_of[p.parent]] = false;
    }
  }

  std::size_t ok = 0;
  for (const auto& [trace, good] : trace_ok) {
    if (good) ++ok;
  }
  return trace_ok.empty() ? 1.0
                          : static_cast<double>(ok) /
                                static_cast<double>(trace_ok.size());
}

std::map<std::string, double> PerServiceAccuracy(
    const std::vector<Span>& spans, const ParentAssignment& predicted) {
  std::unordered_set<SpanId> known;
  for (const Span& s : spans) known.insert(s.id);

  struct Tally {
    std::size_t total = 0;
    std::size_t correct = 0;
  };
  std::map<std::string, Tally> tallies;
  for (const Span& s : spans) {
    if (s.IsRoot() || s.true_parent == kInvalidSpanId ||
        known.count(s.true_parent) == 0) {
      continue;
    }
    Tally& t = tallies[s.caller];
    ++t.total;
    if (auto it = predicted.find(s.id);
        it != predicted.end() && it->second == s.true_parent) {
      ++t.correct;
    }
  }
  std::map<std::string, double> out;
  for (const auto& [service, t] : tallies) {
    out[service] =
        static_cast<double>(t.correct) / static_cast<double>(t.total);
  }
  return out;
}

}  // namespace traceweaver
