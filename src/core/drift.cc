#include "core/drift.h"

namespace traceweaver {

std::vector<DriftFinding> DetectDrift(
    const DelayModel& model,
    const std::map<DelayKey, std::vector<double>>& recent_gaps,
    const DriftOptions& options) {
  std::vector<DriftFinding> findings;
  for (const auto& [key, gaps] : recent_gaps) {
    if (gaps.size() < options.min_samples) continue;
    const GaussianMixture* dist = model.Find(key);
    if (dist == nullptr) continue;

    DriftFinding finding;
    finding.key = key;
    finding.ks = KolmogorovSmirnovTest(
        gaps, [dist](double x) { return dist->Cdf(x); });
    finding.drifted = finding.ks.p_value < options.alpha;
    findings.push_back(std::move(finding));
  }
  return findings;
}

bool AnyDrift(const std::vector<DriftFinding>& findings) {
  for (const DriftFinding& f : findings) {
    if (f.drifted) return true;
  }
  return false;
}

}  // namespace traceweaver
