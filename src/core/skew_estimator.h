// Online per-vantage-pair clock-offset estimation and correction
// (DESIGN.md §4i).
//
// Capture vantages stamp events with independent clocks, so the two sides
// of one RPC disagree by a per-(service, replica) offset. Reconstruction's
// feasibility constraints and delay models compare timestamps *within* one
// vantage, where a constant offset cancels -- but span assembly and gap
// extraction also cross vantages, and there a 100µs offset is enough to
// collapse trace accuracy (the capture-regime rows of BENCH_quality.json).
//
// The estimator consumes exactly the evidence the SpanValidator already
// passes through unmodified: for every caller->callee observation it sees
// the cross-vantage request gap g_req = server_recv - client_send and
// response gap g_resp = client_recv - server_send, both stamped by two
// different clocks. With offset d = (callee clock) - (caller clock) and
// nonnegative network delays,
//
//   g_req  = net_req  + d   >= d      =>  d <= min g_req
//   g_resp = net_resp - d   >= -d     =>  d >= -min g_resp
//
// so the per-pair offset lies in [-min g_resp, min g_req]. The estimate is
// the *minimal consistent correction*: 0 whenever the interval contains 0
// (clean clocks stay untouched, which keeps clean-input assignments
// byte-identical), the nearest interval edge when the whole interval is on
// one side (constant skew), and the interval midpoint when jitter makes
// the interval empty (the NTP-style symmetric estimate). Floors use a
// small buffer of the k smallest gaps with an index-based quantile so a
// few garbled records cannot hijack the minimum. A Welford accumulator
// over the per-span midpoints d_i = (g_req_i - g_resp_i)/2 tracks each
// pair's spread, which sizes the per-edge feasibility slack
// (Parameters::edge_slack_ns): var(d) = (var(g_req)+var(g_resp))/4, so
// sd(d) estimates the per-event jitter scale directly.
//
// Pairwise offsets are then reconciled into one *global frame* per
// vantage: offsets are edges of a graph over vantages (d_AB = f_B - f_A),
// solved by a deterministic BFS spanning tree anchored at the
// lexicographically smallest vantage of each component. Every timestamp
// captured at vantage v is shifted by -f_v -- correcting each span
// pairwise instead would re-skew the caller's own frame and break the
// intra-vantage gaps that were never wrong.
//
// All state (counts, Welford moments, gap buffers) serializes as
// `"ckpt":"skew"` lines inside the traceweaver.checkpoint.v1 stream, so
// the serve loop's kill -9 resume is bit-identical with the estimator on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "trace/span.h"
#include "trace/span_validator.h"

namespace traceweaver::obs {
class MetricsRegistry;  // obs/metrics.h
}

namespace traceweaver {

/// One capture vantage: the (service, replica) whose clock stamped the
/// observation. Root spans use the workload generator's ("client", 0).
using VantageKey = std::pair<std::string, int>;

struct SkewEstimatorOptions {
  /// Pairs with fewer observations than this report offset 0 and no edge
  /// slack (not enough evidence to move timestamps).
  std::size_t min_samples = 8;
  /// Edge slack = max(slack_multiplier * sd(d), min_edge_slack_ns),
  /// following the parameters.h guidance of ~4x the jitter stddev.
  double slack_multiplier = 4.0;
  /// Slack floor for pairs that showed inversions: the frame solve leaves
  /// a residual of about one minimum network delay per hop, which spread
  /// alone underestimates for near-constant skew.
  long long min_edge_slack_ns = 50'000;
};

/// Accumulated skew evidence for one ordered (caller, callee) vantage
/// pair. Offsets are "callee clock minus caller clock" in ns.
struct PairSkewStats {
  /// Size of the k-smallest gap buffers (and so the deepest outlier the
  /// index quantile can skip).
  static constexpr std::size_t kGapBuffer = 16;
  /// One buffer index of outlier skip is earned per this many samples.
  static constexpr std::uint64_t kSamplesPerSkip = 256;

  std::uint64_t samples = 0;
  /// Observations with a negative cross-vantage gap (the SpanValidator's
  /// inversion evidence); > 0 is the signature of real skew.
  std::uint64_t inversions = 0;
  /// Welford moments over the per-span midpoints d_i = (g_req-g_resp)/2.
  double offset_mean = 0.0;
  double offset_m2 = 0.0;
  /// k smallest request/response gaps seen, ascending.
  std::vector<std::int64_t> min_request_gaps;
  std::vector<std::int64_t> min_response_gaps;

  void Observe(std::int64_t request_gap_ns, std::int64_t response_gap_ns);

  /// Sample stddev of the midpoints; estimates the per-event jitter scale.
  double OffsetSpreadNs() const;
  /// Robust floors of the observed gaps (index quantile over the buffer).
  std::int64_t RequestFloorNs() const;
  std::int64_t ResponseFloorNs() const;
  /// Minimal consistent pair offset (see file comment); 0 when the
  /// feasible interval contains 0 or evidence is thin.
  std::int64_t OffsetNs(std::size_t min_samples) const;
};

/// Streaming skew estimator + corrector. Not thread-safe; each pipeline
/// owns one (the optimizer never touches it concurrently).
class SkewEstimator : public SkewObserver {
 public:
  explicit SkewEstimator(SkewEstimatorOptions options = {});

  /// Record-level evidence: one assembled span contributes its request and
  /// response cross-vantage gaps for the (caller, callee) vantage pair.
  void ObserveSpan(const Span& s) override;
  /// Event-level evidence (span assembly feeds this before emitting spans).
  void ObserveGaps(const VantageKey& caller, const VantageKey& callee,
                   std::int64_t request_gap_ns, std::int64_t response_gap_ns);

  /// Offset of `callee`'s clock relative to `caller`'s; 0 when unknown.
  std::int64_t PairOffsetNs(const VantageKey& caller,
                            const VantageKey& callee) const;

  /// Global frame offset of vantage `v` (subtract from every timestamp
  /// stamped at `v` to enter the common frame); 0 when unknown. Lazily
  /// re-solves the frame graph after new observations.
  std::int64_t FrameOffsetNs(const VantageKey& v) const;

  /// Shifts `s` into the common frame: caller-side stamps by the caller
  /// vantage's frame offset, callee-side by the callee's. Returns true if
  /// any timestamp moved.
  bool CorrectSpan(Span& s) const;
  /// Corrects a population in place; returns how many spans moved.
  std::size_t CorrectSpans(std::vector<Span>& spans) const;

  /// Per-(caller service, callee service) feasibility slack derived from
  /// the observed spread, for Parameters::edge_slack_ns. Only pairs that
  /// showed inversions contribute (clean edges keep the global slack), and
  /// replica pairs of one service edge aggregate by max.
  std::map<std::pair<std::string, std::string>, long long> EdgeSlacks()
      const;

  const std::map<std::pair<VantageKey, VantageKey>, PairSkewStats>& pairs()
      const {
    return pairs_;
  }
  std::uint64_t observations() const { return observations_; }
  /// Largest |frame offset| across known vantages (0 when none).
  std::int64_t MaxFrameOffsetNs() const;

  /// Serializes every pair as a `"ckpt":"skew"` JSON line (checkpoint.h
  /// field conventions; doubles as %.17g so restore is bit-exact).
  std::vector<std::string> CheckpointLines() const;
  /// Restores one pair from a `"ckpt":"skew"` line written by
  /// CheckpointLines(); false on malformed input (estimator untouched).
  bool LoadCheckpointLine(const std::string& line);

  /// Flushes the tw_skew_* family (docs/METRICS.md) into `registry`.
  void FlushMetrics(obs::MetricsRegistry& registry) const;

 private:
  void SolveFrames() const;

  SkewEstimatorOptions options_;
  std::map<std::pair<VantageKey, VantageKey>, PairSkewStats> pairs_;
  std::uint64_t observations_ = 0;
  /// Frame solve cache, invalidated by new evidence.
  mutable bool frames_valid_ = false;
  mutable std::map<VantageKey, std::int64_t> frames_;
};

}  // namespace traceweaver
