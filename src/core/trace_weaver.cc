#include "core/trace_weaver.h"

#include <utility>

#include "trace/trace_store.h"
#include "util/thread_pool.h"

namespace traceweaver {

std::map<std::string, double> TraceWeaverOutput::ConfidenceByService() const {
  struct Tally {
    std::size_t total = 0;
    std::size_t top = 0;
  };
  std::map<std::string, Tally> tallies;
  for (const ContainerResult& c : containers) {
    Tally& t = tallies[c.instance.service];
    for (const ParentResult& p : c.parents) {
      ++t.total;
      if (p.Mapped() && p.ChoseTop()) ++t.top;
    }
  }
  std::map<std::string, double> out;
  for (const auto& [service, t] : tallies) {
    if (t.total == 0) continue;
    out[service] =
        static_cast<double>(t.top) / static_cast<double>(t.total);
  }
  return out;
}

TraceWeaver::TraceWeaver(CallGraph graph, TraceWeaverOptions options)
    : graph_(std::move(graph)), options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

TraceWeaver::~TraceWeaver() = default;
TraceWeaver::TraceWeaver(TraceWeaver&&) noexcept = default;
TraceWeaver& TraceWeaver::operator=(TraceWeaver&&) noexcept = default;

TraceWeaverOutput TraceWeaver::Reconstruct(
    const std::vector<Span>& spans) const {
  TraceWeaverOutput out;
  for (const Span& s : spans) out.assignment[s.id] = kInvalidSpanId;

  SpanStore store(spans);
  const std::vector<ContainerView> views = store.AllViews();
  out.containers.resize(views.size());

  // Containers are independent problems; the same pool also serves the
  // stages inside each OptimizeContainer (the caller-participating
  // ParallelFor makes the nesting deadlock-free). Results land in
  // per-container slots and every stage is order-insensitive, so output is
  // bit-identical to a serial run.
  OptimizerOptions oopts = options_.optimizer;
  oopts.pool = pool_.get();
  ThreadPool::Run(pool_.get(), views.size(), [&](std::size_t i) {
    out.containers[i] = OptimizeContainer(views[i], graph_, oopts);
  });
  for (const ContainerResult& result : out.containers) {
    result.AppendAssignment(out.assignment);
  }

  // Instrumented links are authoritative: they override whatever the
  // optimization produced and cover parents outside any container view.
  if (options_.optimizer.pinned != nullptr) {
    for (const auto& [child, parent] : *options_.optimizer.pinned) {
      if (parent != kInvalidSpanId) out.assignment[child] = parent;
    }
  }
  return out;
}

ParentAssignment TraceWeaver::Map(const MapperInput& input) {
  if (input.call_graph != nullptr) {
    TraceWeaver scoped(*input.call_graph, options_);
    return scoped.Reconstruct(*input.spans).assignment;
  }
  return Reconstruct(*input.spans).assignment;
}

}  // namespace traceweaver
