#include "core/trace_weaver.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "trace/trace_store.h"

namespace traceweaver {

std::map<std::string, double> TraceWeaverOutput::ConfidenceByService() const {
  struct Tally {
    std::size_t total = 0;
    std::size_t top = 0;
  };
  std::map<std::string, Tally> tallies;
  for (const ContainerResult& c : containers) {
    Tally& t = tallies[c.instance.service];
    for (const ParentResult& p : c.parents) {
      ++t.total;
      if (p.Mapped() && p.ChoseTop()) ++t.top;
    }
  }
  std::map<std::string, double> out;
  for (const auto& [service, t] : tallies) {
    if (t.total == 0) continue;
    out[service] =
        static_cast<double>(t.top) / static_cast<double>(t.total);
  }
  return out;
}

TraceWeaver::TraceWeaver(CallGraph graph, TraceWeaverOptions options)
    : graph_(std::move(graph)), options_(options) {}

TraceWeaverOutput TraceWeaver::Reconstruct(
    const std::vector<Span>& spans) const {
  TraceWeaverOutput out;
  for (const Span& s : spans) out.assignment[s.id] = kInvalidSpanId;

  SpanStore store(spans);
  const std::vector<ServiceInstance> containers = store.Containers();
  out.containers.resize(containers.size());

  if (options_.num_threads <= 1 || containers.size() <= 1) {
    for (std::size_t i = 0; i < containers.size(); ++i) {
      out.containers[i] = OptimizeContainer(store.ViewOf(containers[i]),
                                            graph_, options_.optimizer);
    }
  } else {
    // Containers are independent; shard them across workers. Results land
    // in per-container slots, so output is identical to the serial order.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1); i < containers.size();
           i = next.fetch_add(1)) {
        out.containers[i] = OptimizeContainer(store.ViewOf(containers[i]),
                                              graph_, options_.optimizer);
      }
    };
    std::vector<std::thread> threads;
    const std::size_t n =
        std::min(options_.num_threads, containers.size());
    threads.reserve(n);
    for (std::size_t t = 0; t < n; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  for (const ContainerResult& result : out.containers) {
    result.AppendAssignment(out.assignment);
  }

  // Instrumented links are authoritative: they override whatever the
  // optimization produced and cover parents outside any container view.
  if (options_.optimizer.pinned != nullptr) {
    for (const auto& [child, parent] : *options_.optimizer.pinned) {
      if (parent != kInvalidSpanId) out.assignment[child] = parent;
    }
  }
  return out;
}

ParentAssignment TraceWeaver::Map(const MapperInput& input) {
  if (input.call_graph != nullptr) {
    TraceWeaver scoped(*input.call_graph, options_);
    return scoped.Reconstruct(*input.spans).assignment;
  }
  return Reconstruct(*input.spans).assignment;
}

}  // namespace traceweaver
