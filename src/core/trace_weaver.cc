#include "core/trace_weaver.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/pipeline_metrics.h"
#include "obs/stage_timer.h"
#include "trace/trace_store.h"
#include "util/thread_pool.h"

namespace traceweaver {

std::map<std::string, double> TraceWeaverOutput::ConfidenceByService() const {
  struct Tally {
    std::size_t total = 0;
    std::size_t top = 0;
  };
  std::map<std::string, Tally> tallies;
  for (const ContainerResult& c : containers) {
    Tally& t = tallies[c.instance.service];
    for (const ParentResult& p : c.parents) {
      ++t.total;
      if (p.Mapped() && p.ChoseTop()) ++t.top;
    }
  }
  std::map<std::string, double> out;
  for (const auto& [service, t] : tallies) {
    if (t.total == 0) continue;
    out[service] =
        static_cast<double>(t.top) / static_cast<double>(t.total);
  }
  return out;
}

TraceWeaver::TraceWeaver(CallGraph graph, TraceWeaverOptions options)
    : graph_(std::move(graph)), options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.metrics != nullptr) {
    metrics_ = std::make_unique<obs::PipelineMetrics>(*options_.metrics);
    if (options_.compute_quality) {
      quality_metrics_ =
          std::make_unique<obs::QualityMetrics>(*options_.metrics);
    }
  }
}

TraceWeaver::~TraceWeaver() = default;
TraceWeaver::TraceWeaver(TraceWeaver&&) noexcept = default;
TraceWeaver& TraceWeaver::operator=(TraceWeaver&&) noexcept = default;

TraceWeaverOutput TraceWeaver::Reconstruct(
    const std::vector<Span>& spans) const {
  static const obs::PipelineMetrics kInertMetrics;
  const obs::PipelineMetrics& pm =
      metrics_ != nullptr ? *metrics_ : kInertMetrics;
  const auto timer = [&pm](obs::Stage s) {
    const auto i = static_cast<std::size_t>(s);
    return obs::StageTimer(pm.stage_wall_ns[i], pm.stage_cpu_ns[i]);
  };
  const std::uint64_t run_start =
      metrics_ != nullptr ? obs::WallNowNs() : 0;

  TraceWeaverOutput out;

  std::optional<SpanStore> store;
  std::vector<ContainerView> views;
  {
    auto t = timer(obs::Stage::kViews);
    store.emplace(spans);
    views = store->AllViews();
  }
  out.containers.resize(views.size());

  // Containers are independent problems; the same pool also serves the
  // stages inside each OptimizeContainer (the caller-participating
  // ParallelFor makes the nesting deadlock-free). Results land in
  // per-container slots and every stage is order-insensitive, so output is
  // bit-identical to a serial run.
  OptimizerOptions oopts = options_.optimizer;
  oopts.pool = pool_.get();
  if (oopts.metrics == nullptr) oopts.metrics = metrics_.get();
  if (options_.compute_quality) oopts.collect_quality = true;
  ThreadPool::Run(pool_.get(), views.size(), [&](std::size_t i) {
    out.containers[i] = OptimizeContainer(views[i], graph_, oopts);
  });

  {
    auto t = timer(obs::Stage::kStitch);
    for (const Span& s : spans) out.assignment[s.id] = kInvalidSpanId;
    for (const ContainerResult& result : out.containers) {
      result.AppendAssignment(out.assignment);
    }
    // Instrumented links are authoritative: they override whatever the
    // optimization produced and cover parents outside any container view.
    if (options_.optimizer.pinned != nullptr) {
      for (const auto& [child, parent] : *options_.optimizer.pinned) {
        if (parent != kInvalidSpanId) out.assignment[child] = parent;
      }
    }
  }

  if (options_.compute_quality) {
    auto t = timer(obs::Stage::kQuality);
    // Parameters::sampling_rate is the single source of truth; the quality
    // layer inherits it so orphan/skip downgrades match the scoring model.
    obs::QualityOptions qopts = options_.quality;
    qopts.sampling_rate = options_.optimizer.params.sampling_rate;
    out.quality = obs::ComputeQuality(spans, out.containers, out.assignment,
                                      qopts, quality_metrics_.get());
  }

  pm.runs.Inc();
  pm.run_spans.Inc(spans.size());
  pm.run_containers.Inc(views.size());
  if (metrics_ != nullptr) {
    pm.run_wall_ns.Inc(obs::WallNowNs() - run_start);
    pm.threads.Set(static_cast<std::int64_t>(
        std::max<std::size_t>(options_.num_threads, 1)));
  }
  return out;
}

ParentAssignment TraceWeaver::Map(const MapperInput& input) {
  if (input.call_graph != nullptr) {
    TraceWeaver scoped(*input.call_graph, options_);
    return scoped.Reconstruct(*input.spans).assignment;
  }
  return Reconstruct(*input.spans).assignment;
}

}  // namespace traceweaver
