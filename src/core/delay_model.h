// Inter-span delay distributions (§4.1 step 3).
//
// One distribution per "dependency edge" at a handler: the gap between the
// event that enables a backend call (parent request arrival for stage 0,
// completion of the previous stage otherwise) and the call's departure,
// plus one distribution for the response gap (last child completion ->
// parent response departure). Iteration 1 uses seed Gaussians estimated
// without any mapping (difference of means + bucketed CLT variance);
// later iterations refit Gaussian mixtures (EM + BIC) on the gaps implied
// by the current mapping.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "stats/gaussian.h"
#include "stats/gmm.h"

namespace traceweaver {

/// Identifies one delay distribution at a handler. stage/call index the
/// InvocationPlan position; {-1, -1} is the response-gap distribution.
struct DelayKey {
  std::string service;
  std::string endpoint;
  int stage = 0;
  int call = 0;

  static DelayKey ResponseGap(std::string service, std::string endpoint) {
    return DelayKey{std::move(service), std::move(endpoint), -1, -1};
  }

  bool operator<(const DelayKey& o) const {
    if (service != o.service) return service < o.service;
    if (endpoint != o.endpoint) return endpoint < o.endpoint;
    if (stage != o.stage) return stage < o.stage;
    return call < o.call;
  }
  bool operator==(const DelayKey& o) const {
    return service == o.service && endpoint == o.endpoint &&
           stage == o.stage && call == o.call;
  }
};

/// The collection of per-edge delay distributions used for scoring.
class DelayModel {
 public:
  /// Installs a seed (single-Gaussian) distribution.
  void SetSeed(const DelayKey& key, const Gaussian& seed);

  /// Replaces the distribution with a BIC-selected GMM fit on `gaps`.
  /// Empty gap sets leave the existing distribution untouched.
  void Refit(const DelayKey& key, const std::vector<double>& gaps,
             const GmmFitOptions& options);

  /// Log-density of `gap` under the key's distribution. Unknown keys score
  /// against a weak, wide fallback so candidates stay comparable.
  double LogScore(const DelayKey& key, double gap) const;

  /// Peak log-density of the key's distribution: the best score any gap can
  /// achieve. `LogScore - MaxLogScore` is a unit-free likelihood ratio used
  /// to compare timing terms against discrete skip probabilities.
  double MaxLogScore(const DelayKey& key) const;

  /// Hot-path view of one distribution: the mixture pointer (stable across
  /// Refit/Install -- map nodes are never moved) plus its cached peak
  /// log-density. Unknown keys yield {nullptr, FallbackLogPdf(0)} and score
  /// against the fallback Gaussian.
  struct DistView {
    const GaussianMixture* mixture = nullptr;
    double max_log_pdf = 0.0;
  };
  DistView View(const DelayKey& key) const;

  /// Log-density of the wide fallback distribution used for unknown keys
  /// (mean 0, stddev 50 ms). Exposed so precomputed scoring tables can
  /// reproduce LogScore exactly without a map lookup.
  static double FallbackLogPdf(double gap);

  /// Batched flavour: out[i] = FallbackLogPdf(gaps[i]), bitwise identical
  /// per element (routes through Gaussian::LogPdfBatch). out must be at
  /// least gaps.size(); the two may not alias.
  static void FallbackLogPdfBatch(std::span<const double> gaps,
                                  std::span<double> out);

  /// Installs an externally fitted mixture (e.g. from a parallel refit);
  /// equivalent to Refit with a fit that produced `mixture`.
  void Install(const DelayKey& key, GaussianMixture mixture);

  bool Has(const DelayKey& key) const { return dists_.count(key) > 0; }
  std::size_t size() const { return dists_.size(); }

  /// Aggregate shape of the model, for observability/reports.
  struct Summary {
    std::size_t keys = 0;          ///< Distributions held.
    std::size_t mixture_keys = 0;  ///< Keys with more than one component.
    std::size_t components = 0;    ///< Total mixture components.
  };
  Summary Summarize() const;

  const GaussianMixture* Find(const DelayKey& key) const;

 private:
  struct Entry {
    GaussianMixture mixture;
    double max_log_pdf = 0.0;
  };
  std::map<DelayKey, Entry> dists_;
};

}  // namespace traceweaver
