#include "core/explain.h"

#include <cstdio>
#include <sstream>

#include "util/table.h"

namespace traceweaver {
namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string Id(SpanId id) {
  return id == kInvalidSpanId ? std::string("-") : std::to_string(id);
}

std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string ChildrenList(const ExplainCandidate& c) {
  std::string out;
  for (std::size_t i = 0; i < c.children.size(); ++i) {
    if (i > 0) out += ',';
    out += c.children[i] == kSkippedChild ? "skip" : std::to_string(c.children[i]);
  }
  return out;
}

}  // namespace

std::string ExplainTable(const ExplainCapture& e) {
  std::ostringstream out;
  if (!e.found) {
    out << "parent span not found among optimizer tasks (unknown id, leaf "
           "handler, or no invocation plan)\n";
    return out.str();
  }
  out << "=== explain parent " << e.parent << " (" << e.service << " "
      << e.endpoint << ") ===\n";
  out << "candidates: " << e.candidates_enumerated << " enumerated, "
      << e.candidates_shown << " shown; batch " << e.batch << " ("
      << e.batch_size << " parents)";
  if (e.chosen_rank >= 0) {
    out << "; winner: rank " << e.chosen_rank;
  } else {
    out << "; UNMAPPED (no candidate chosen)";
  }
  out << '\n';

  TextTable table;
  table.SetHeader({"rank", "score", "picked", "top-k", "skips", "children"});
  for (const ExplainCandidate& c : e.candidates) {
    table.AddRow({std::to_string(c.rank), Fmt(c.score, 4),
                  c.chosen ? "<== winner" : "", c.in_top_k ? "y" : "",
                  std::to_string(c.skips), ChildrenList(c)});
  }
  out << table.Render();

  // Per-position decomposition of the winner (or the top-ranked candidate
  // when nothing was chosen).
  const ExplainCandidate* detail = nullptr;
  for (const ExplainCandidate& c : e.candidates) {
    if (c.chosen) detail = &c;
  }
  if (detail == nullptr && !e.candidates.empty()) detail = &e.candidates[0];
  if (detail != nullptr) {
    out << "\nscore breakdown of rank " << detail->rank << ":\n";
    TextTable breakdown;
    breakdown.SetHeader({"pos", "backend", "child", "gap us", "timing lp",
                         "discrete lp", "thread"});
    const ScoreBreakdown& b = detail->breakdown;
    for (std::size_t i = 0; i < b.positions.size(); ++i) {
      const ScoreBreakdown::Position& p = b.positions[i];
      breakdown.AddRow(
          {std::to_string(p.stage) + "." + std::to_string(p.call),
           p.service + " " + p.endpoint,
           p.skipped ? "skip" : std::to_string(p.child),
           p.skipped ? "-" : Fmt(p.gap_ns / 1e3, 1),
           p.skipped ? "-" : Fmt(p.timing_lp, 4), Fmt(p.discrete_lp, 4),
           p.thread_bonus != 0.0 ? Fmt(p.thread_bonus, 2) : ""});
    }
    if (b.has_response) {
      breakdown.AddRow({"resp", "", "", Fmt(b.response_gap_ns / 1e3, 1),
                        Fmt(b.response_lp, 4), "", ""});
    }
    breakdown.AddRow({"total", "", "", "", Fmt(b.total, 4), "", ""});
    out << breakdown.Render();
  }

  if (!e.conflicts.empty()) {
    out << "\nMWIS conflict neighbors (same batch, contested children):\n";
    TextTable conflicts;
    conflicts.SetHeader({"parent", "handler", "shared children"});
    for (const ExplainConflict& c : e.conflicts) {
      conflicts.AddRow({std::to_string(c.parent), c.service + " " + c.endpoint,
                        std::to_string(c.shared_children)});
    }
    out << conflicts.Render();
  }
  return out.str();
}

std::string ExplainJson(const ExplainCapture& e) {
  std::string out = "{\"schema\":\"traceweaver.explain.v1\",";
  out += "\"found\":" + std::string(e.found ? "true" : "false") + ",";
  out += "\"parent\":" + JsonStr(Id(e.parent)) + ",";
  out += "\"service\":" + JsonStr(e.service) + ",";
  out += "\"endpoint\":" + JsonStr(e.endpoint) + ",";
  out += "\"candidates_enumerated\":" + std::to_string(e.candidates_enumerated) + ",";
  out += "\"batch\":" + std::to_string(e.batch) + ",";
  out += "\"batch_size\":" + std::to_string(e.batch_size) + ",";
  out += "\"chosen_rank\":" + std::to_string(e.chosen_rank) + ",";
  out += "\"candidates\":[";
  for (std::size_t i = 0; i < e.candidates.size(); ++i) {
    const ExplainCandidate& c = e.candidates[i];
    if (i > 0) out += ',';
    out += "{\"rank\":" + std::to_string(c.rank) + ",";
    out += "\"score\":" + Num(c.score) + ",";
    out += "\"chosen\":" + std::string(c.chosen ? "true" : "false") + ",";
    out += "\"in_top_k\":" + std::string(c.in_top_k ? "true" : "false") + ",";
    out += "\"skips\":" + std::to_string(c.skips) + ",";
    out += "\"children\":[";
    for (std::size_t j = 0; j < c.children.size(); ++j) {
      if (j > 0) out += ',';
      out += JsonStr(c.children[j] == kSkippedChild
                         ? std::string("skip")
                         : std::to_string(c.children[j]));
    }
    out += "],\"breakdown\":{\"positions\":[";
    const ScoreBreakdown& b = c.breakdown;
    for (std::size_t j = 0; j < b.positions.size(); ++j) {
      const ScoreBreakdown::Position& p = b.positions[j];
      if (j > 0) out += ',';
      out += "{\"stage\":" + std::to_string(p.stage) + ",";
      out += "\"call\":" + std::to_string(p.call) + ",";
      out += "\"service\":" + JsonStr(p.service) + ",";
      out += "\"endpoint\":" + JsonStr(p.endpoint) + ",";
      out += "\"child\":" + JsonStr(p.skipped ? std::string("skip")
                                              : std::to_string(p.child)) + ",";
      out += "\"skipped\":" + std::string(p.skipped ? "true" : "false") + ",";
      out += "\"gap_ns\":" + Num(p.gap_ns) + ",";
      out += "\"timing_lp\":" + Num(p.timing_lp) + ",";
      out += "\"discrete_lp\":" + Num(p.discrete_lp) + ",";
      out += "\"thread_bonus\":" + Num(p.thread_bonus) + "}";
    }
    out += "],\"has_response\":" +
           std::string(b.has_response ? "true" : "false") + ",";
    out += "\"response_gap_ns\":" + Num(b.response_gap_ns) + ",";
    out += "\"response_lp\":" + Num(b.response_lp) + ",";
    out += "\"total\":" + Num(b.total) + "}}";
  }
  out += "],\"conflicts\":[";
  for (std::size_t i = 0; i < e.conflicts.size(); ++i) {
    const ExplainConflict& c = e.conflicts[i];
    if (i > 0) out += ',';
    out += "{\"parent\":" + JsonStr(Id(c.parent)) + ",";
    out += "\"service\":" + JsonStr(c.service) + ",";
    out += "\"endpoint\":" + JsonStr(c.endpoint) + ",";
    out += "\"shared_children\":" + std::to_string(c.shared_children) + "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace traceweaver
