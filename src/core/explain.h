// The `explain` drill-down: why did the optimizer pick one mapping for a
// given parent span?
//
// When OptimizerOptions::explain_parent names an incoming span, the
// pipeline fills an ExplainCapture at the end of OptimizeContainer (cold
// path, after the final iteration, against the final delay model): the
// candidate table with per-position score decompositions (delay log-pdfs,
// skip terms, thread bonuses), each candidate's final rank, the winner,
// and the MWIS conflict neighbors -- other parents in the same batch that
// compete for at least one of this parent's candidate children.
//
// Renderers produce an aligned text table for terminals and a stable JSON
// document (schema `traceweaver.explain.v1`) for tooling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/candidates.h"
#include "trace/span.h"

namespace traceweaver {

/// One candidate row of the explain table, in final rank order.
struct ExplainCandidate {
  std::size_t rank = 0;  ///< 0 = best score.
  double score = 0.0;
  bool chosen = false;    ///< The joint optimization selected this one.
  bool in_top_k = false;  ///< Survived the top-K cut into ParentResult.
  std::size_t skips = 0;
  std::vector<SpanId> children;  ///< kSkippedChild where skipped.
  ScoreBreakdown breakdown;
};

/// A parent in the same batch competing for shared candidate children.
struct ExplainConflict {
  SpanId parent = kInvalidSpanId;
  std::string service;
  std::string endpoint;
  std::size_t shared_children = 0;  ///< Distinct contested child spans.
};

struct ExplainCapture {
  bool found = false;  ///< Parent located among the optimizer's tasks.
  SpanId parent = kInvalidSpanId;
  std::string service;   ///< Handler service (span callee).
  std::string endpoint;  ///< Handler endpoint.
  std::size_t candidates_enumerated = 0;
  std::size_t candidates_shown = 0;  ///< Rows below (capped).
  std::size_t batch = 0;       ///< Batch index within the container.
  std::size_t batch_size = 0;  ///< Parents sharing the batch.
  int chosen_rank = -1;        ///< Rank of the winning candidate; -1 unmapped.
  std::vector<ExplainCandidate> candidates;  ///< Best score first.
  std::vector<ExplainConflict> conflicts;
};

/// Candidate rows captured at most (full enumeration counts are still
/// reported in candidates_enumerated).
inline constexpr std::size_t kExplainCandidateCap = 32;

/// Aligned text-table rendering for terminals.
std::string ExplainTable(const ExplainCapture& capture);

/// Stable JSON rendering (schema `traceweaver.explain.v1`): fixed key
/// order, %.6f floats, ids as decimal strings.
std::string ExplainJson(const ExplainCapture& capture);

}  // namespace traceweaver
