#include "core/mis_solver.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace traceweaver {
namespace {

/// Recursive exact MWIS with the standard structure-exploiting moves:
/// degree-0/1 reductions, connected-component decomposition, and
/// branch-and-bound on the highest-degree vertex. Conflict graphs from
/// TraceWeaver batches are sparse (same-span cliques plus occasional
/// shared-child edges), which these moves dismantle quickly.
class ComponentSolver {
 public:
  ComponentSolver(const MisProblem& problem, std::size_t node_budget)
      : p_(problem), budget_(node_budget) {}

  bool exhausted() const { return exhausted_; }

  /// Solves the subproblem induced by `alive` (sorted vertex ids).
  /// Returns (weight, chosen vertices).
  std::pair<double, std::vector<int>> Solve(std::vector<int> alive) {
    if (exhausted_) return Greedy(alive);
    if (++nodes_ > budget_) {
      exhausted_ = true;
      return Greedy(alive);
    }
    if (alive.empty()) return {0.0, {}};

    std::unordered_set<int> alive_set(alive.begin(), alive.end());
    double base_weight = 0.0;
    std::vector<int> base_chosen;

    // Reduction loop: strip degree-0 vertices (always take) and degree-1
    // vertices whose weight dominates their only neighbor (taking them is
    // never worse).
    bool reduced = true;
    while (reduced) {
      reduced = false;
      for (int v : std::vector<int>(alive_set.begin(), alive_set.end())) {
        if (alive_set.count(v) == 0) continue;
        int degree = 0;
        int only_neighbor = -1;
        for (int u : p_.adjacency[static_cast<std::size_t>(v)]) {
          if (alive_set.count(u) > 0) {
            ++degree;
            only_neighbor = u;
            if (degree > 1) break;
          }
        }
        if (degree == 0) {
          base_weight += p_.weights[static_cast<std::size_t>(v)];
          base_chosen.push_back(v);
          alive_set.erase(v);
          reduced = true;
        } else if (degree == 1 &&
                   p_.weights[static_cast<std::size_t>(v)] >=
                       p_.weights[static_cast<std::size_t>(only_neighbor)]) {
          base_weight += p_.weights[static_cast<std::size_t>(v)];
          base_chosen.push_back(v);
          alive_set.erase(v);
          alive_set.erase(only_neighbor);
          reduced = true;
        }
      }
    }
    if (alive_set.empty()) return {base_weight, std::move(base_chosen)};

    // Component decomposition: solve each connected component separately.
    std::vector<std::vector<int>> components;
    {
      std::unordered_set<int> unvisited = alive_set;
      while (!unvisited.empty()) {
        std::vector<int> comp;
        std::vector<int> stack{*unvisited.begin()};
        unvisited.erase(stack.back());
        while (!stack.empty()) {
          const int v = stack.back();
          stack.pop_back();
          comp.push_back(v);
          for (int u : p_.adjacency[static_cast<std::size_t>(v)]) {
            if (unvisited.count(u) > 0) {
              unvisited.erase(u);
              stack.push_back(u);
            }
          }
        }
        std::sort(comp.begin(), comp.end());
        components.push_back(std::move(comp));
      }
    }

    if (components.size() > 1) {
      double total = base_weight;
      std::vector<int> chosen = std::move(base_chosen);
      for (auto& comp : components) {
        auto [w, c] = Solve(std::move(comp));
        total += w;
        chosen.insert(chosen.end(), c.begin(), c.end());
      }
      return {total, std::move(chosen)};
    }

    // Single non-trivial component: branch on the highest-degree vertex.
    const std::vector<int>& comp = components[0];
    std::unordered_set<int> comp_set(comp.begin(), comp.end());
    int pivot = comp[0];
    int pivot_degree = -1;
    for (int v : comp) {
      int degree = 0;
      for (int u : p_.adjacency[static_cast<std::size_t>(v)]) {
        if (comp_set.count(u) > 0) ++degree;
      }
      if (degree > pivot_degree ||
          (degree == pivot_degree && v < pivot)) {
        pivot_degree = degree;
        pivot = v;
      }
    }

    // Include pivot: drop it and its neighbors.
    std::vector<int> without_nbhd;
    const auto& nbrs = p_.adjacency[static_cast<std::size_t>(pivot)];
    std::unordered_set<int> closed(nbrs.begin(), nbrs.end());
    closed.insert(pivot);
    for (int v : comp) {
      if (closed.count(v) == 0) without_nbhd.push_back(v);
    }
    auto [w_in, c_in] = Solve(std::move(without_nbhd));
    w_in += p_.weights[static_cast<std::size_t>(pivot)];
    c_in.push_back(pivot);

    // Exclude pivot.
    std::vector<int> without_pivot;
    for (int v : comp) {
      if (v != pivot) without_pivot.push_back(v);
    }
    auto [w_out, c_out] = Solve(std::move(without_pivot));

    if (w_in >= w_out) {
      c_in.insert(c_in.end(), base_chosen.begin(), base_chosen.end());
      return {base_weight + w_in, std::move(c_in)};
    }
    c_out.insert(c_out.end(), base_chosen.begin(), base_chosen.end());
    return {base_weight + w_out, std::move(c_out)};
  }

 private:
  /// Greedy solution over a subset, used once the node budget is spent.
  std::pair<double, std::vector<int>> Greedy(const std::vector<int>& alive) {
    std::unordered_set<int> alive_set(alive.begin(), alive.end());
    std::vector<int> order = alive;
    std::sort(order.begin(), order.end(), [this](int a, int b) {
      const double wa = p_.weights[static_cast<std::size_t>(a)];
      const double wb = p_.weights[static_cast<std::size_t>(b)];
      if (wa != wb) return wa > wb;
      return a < b;
    });
    std::unordered_set<int> blocked;
    double weight = 0.0;
    std::vector<int> chosen;
    for (int v : order) {
      if (blocked.count(v) > 0) continue;
      chosen.push_back(v);
      weight += p_.weights[static_cast<std::size_t>(v)];
      for (int u : p_.adjacency[static_cast<std::size_t>(v)]) {
        if (alive_set.count(u) > 0) blocked.insert(u);
      }
    }
    return {weight, std::move(chosen)};
  }

  const MisProblem& p_;
  std::size_t budget_;
  std::size_t nodes_ = 0;
  bool exhausted_ = false;
};

}  // namespace

MisSolution SolveMwisGreedy(const MisProblem& problem) {
  const std::size_t n = problem.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&problem](int a, int b) {
    const auto da = static_cast<double>(
        problem.adjacency[static_cast<std::size_t>(a)].size());
    const auto db = static_cast<double>(
        problem.adjacency[static_cast<std::size_t>(b)].size());
    const double sa = problem.weights[static_cast<std::size_t>(a)] / (da + 1.0);
    const double sb = problem.weights[static_cast<std::size_t>(b)] / (db + 1.0);
    if (sa != sb) return sa > sb;
    return a < b;
  });

  std::vector<bool> taken(n, false), blocked(n, false);
  for (int v : order) {
    const auto vi = static_cast<std::size_t>(v);
    if (blocked[vi]) continue;
    taken[vi] = true;
    for (int u : problem.adjacency[vi]) {
      blocked[static_cast<std::size_t>(u)] = true;
    }
  }

  // 1-swap improvement: add any free vertex; swap in a vertex that beats
  // its single taken neighbor.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (taken[v]) continue;
      int conflict = -1;
      bool feasible = true;
      for (int u : problem.adjacency[v]) {
        if (taken[static_cast<std::size_t>(u)]) {
          if (conflict >= 0) {
            feasible = false;
            break;
          }
          conflict = u;
        }
      }
      if (!feasible) continue;
      if (conflict < 0) {
        taken[v] = true;
        improved = true;
      } else if (problem.weights[v] >
                 problem.weights[static_cast<std::size_t>(conflict)]) {
        taken[static_cast<std::size_t>(conflict)] = false;
        taken[v] = true;
        improved = true;
      }
    }
  }

  MisSolution sol;
  for (std::size_t v = 0; v < n; ++v) {
    if (taken[v]) {
      sol.chosen.push_back(static_cast<int>(v));
      sol.weight += problem.weights[v];
    }
  }
  sol.optimal = false;
  return sol;
}

MisSolution SolveMwis(const MisProblem& problem, std::size_t node_budget) {
  const std::size_t n = problem.size();
  if (n == 0) return MisSolution{{}, 0.0, true};

  ComponentSolver solver(problem, node_budget);
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  auto [weight, chosen] = solver.Solve(std::move(all));

  MisSolution sol;
  sol.weight = weight;
  sol.chosen = std::move(chosen);
  sol.optimal = !solver.exhausted();
  std::sort(sol.chosen.begin(), sol.chosen.end());

  // Under budget exhaustion parts of the answer are greedy; make sure we
  // never return something worse than the plain greedy baseline.
  if (!sol.optimal) {
    MisSolution greedy = SolveMwisGreedy(problem);
    if (greedy.weight > sol.weight) return greedy;
  }
  return sol;
}

}  // namespace traceweaver
