#include "core/mis_solver.h"

#include <algorithm>
#include <numeric>

namespace traceweaver {
namespace {

/// Recursive exact MWIS with the standard structure-exploiting moves:
/// degree-0/1 reductions, connected-component decomposition, and
/// branch-and-bound on the highest-degree vertex. Conflict graphs from
/// TraceWeaver batches are sparse (same-span cliques plus occasional
/// shared-child edges), which these moves dismantle quickly.
class ComponentSolver {
 public:
  ComponentSolver(const MisProblem& problem, std::size_t node_budget)
      : p_(problem), budget_(node_budget) {}

  bool exhausted() const { return exhausted_; }
  std::size_t nodes() const { return nodes_; }

  /// Solves the subproblem induced by `alive` (sorted vertex ids).
  /// Returns (weight, chosen vertices).
  std::pair<double, std::vector<int>> Solve(std::vector<int> alive) {
    return Solve(std::move(alive), 0);
  }

 private:
  std::pair<double, std::vector<int>> Solve(std::vector<int> alive,
                                            std::size_t depth) {
    if (exhausted_) return Greedy(alive);
    if (++nodes_ > budget_) {
      exhausted_ = true;
      return Greedy(alive);
    }
    if (alive.empty()) return {0.0, {}};

    // Membership masks replace hash sets: subproblems are dense in practice
    // and the masks are pooled per recursion depth, so each Solve costs one
    // O(n) clear instead of per-element hash-node churn. Scans run in
    // ascending vertex order.
    std::vector<char>& in = Mask(depth, 0);
    for (int v : alive) in[static_cast<std::size_t>(v)] = 1;
    double base_weight = 0.0;
    std::vector<int> base_chosen;

    // Reduction loop: strip degree-0 vertices (always take) and degree-1
    // vertices whose weight dominates their only neighbor (taking them is
    // never worse).
    bool reduced = true;
    while (reduced) {
      reduced = false;
      for (int v : alive) {
        if (in[static_cast<std::size_t>(v)] == 0) continue;
        int degree = 0;
        int only_neighbor = -1;
        for (int u : p_.adjacency[static_cast<std::size_t>(v)]) {
          if (in[static_cast<std::size_t>(u)] != 0) {
            ++degree;
            only_neighbor = u;
            if (degree > 1) break;
          }
        }
        if (degree == 0) {
          base_weight += p_.weights[static_cast<std::size_t>(v)];
          base_chosen.push_back(v);
          in[static_cast<std::size_t>(v)] = 0;
          reduced = true;
        } else if (degree == 1 &&
                   p_.weights[static_cast<std::size_t>(v)] >=
                       p_.weights[static_cast<std::size_t>(only_neighbor)]) {
          base_weight += p_.weights[static_cast<std::size_t>(v)];
          base_chosen.push_back(v);
          in[static_cast<std::size_t>(v)] = 0;
          in[static_cast<std::size_t>(only_neighbor)] = 0;
          reduced = true;
        }
      }
    }
    alive.erase(std::remove_if(alive.begin(), alive.end(),
                               [&in](int v) {
                                 return in[static_cast<std::size_t>(v)] == 0;
                               }),
                alive.end());
    if (alive.empty()) return {base_weight, std::move(base_chosen)};

    // Component decomposition: solve each connected component separately.
    // `visited` doubles as the BFS frontier dedup; components come out in
    // ascending-seed order, each sorted.
    std::vector<std::vector<int>> components;
    {
      std::vector<char>& visited = Mask(depth, 1);
      std::vector<int> stack;
      for (int seed : alive) {
        if (visited[static_cast<std::size_t>(seed)] != 0) continue;
        std::vector<int> comp;
        stack.assign(1, seed);
        visited[static_cast<std::size_t>(seed)] = 1;
        while (!stack.empty()) {
          const int v = stack.back();
          stack.pop_back();
          comp.push_back(v);
          for (int u : p_.adjacency[static_cast<std::size_t>(v)]) {
            if (in[static_cast<std::size_t>(u)] != 0 &&
                visited[static_cast<std::size_t>(u)] == 0) {
              visited[static_cast<std::size_t>(u)] = 1;
              stack.push_back(u);
            }
          }
        }
        std::sort(comp.begin(), comp.end());
        components.push_back(std::move(comp));
      }
    }

    if (components.size() > 1) {
      double total = base_weight;
      std::vector<int> chosen = std::move(base_chosen);
      for (auto& comp : components) {
        auto [w, c] = Solve(std::move(comp), depth + 1);
        total += w;
        chosen.insert(chosen.end(), c.begin(), c.end());
      }
      return {total, std::move(chosen)};
    }

    // Single non-trivial component: branch on the highest-degree vertex.
    // comp == alive here, so `in` doubles as the component membership mask.
    const std::vector<int>& comp = components[0];
    int pivot = comp[0];
    int pivot_degree = -1;
    for (int v : comp) {
      int degree = 0;
      for (int u : p_.adjacency[static_cast<std::size_t>(v)]) {
        if (in[static_cast<std::size_t>(u)] != 0) ++degree;
      }
      if (degree > pivot_degree ||
          (degree == pivot_degree && v < pivot)) {
        pivot_degree = degree;
        pivot = v;
      }
    }

    // Include pivot: drop it and its neighbors.
    std::vector<int> without_nbhd;
    {
      std::vector<char>& closed = Mask(depth, 2);
      for (int u : p_.adjacency[static_cast<std::size_t>(pivot)]) {
        closed[static_cast<std::size_t>(u)] = 1;
      }
      closed[static_cast<std::size_t>(pivot)] = 1;
      for (int v : comp) {
        if (closed[static_cast<std::size_t>(v)] == 0) {
          without_nbhd.push_back(v);
        }
      }
    }
    auto [w_in, c_in] = Solve(std::move(without_nbhd), depth + 1);
    w_in += p_.weights[static_cast<std::size_t>(pivot)];
    c_in.push_back(pivot);

    // Exclude pivot.
    std::vector<int> without_pivot;
    for (int v : comp) {
      if (v != pivot) without_pivot.push_back(v);
    }
    auto [w_out, c_out] = Solve(std::move(without_pivot), depth + 1);

    if (w_in >= w_out) {
      c_in.insert(c_in.end(), base_chosen.begin(), base_chosen.end());
      return {base_weight + w_in, std::move(c_in)};
    }
    c_out.insert(c_out.end(), base_chosen.begin(), base_chosen.end());
    return {base_weight + w_out, std::move(c_out)};
  }

  /// Zeroed scratch mask for one (depth, slot) pair; pooled so recursion
  /// reuses capacity instead of reallocating. The whole row of a depth is
  /// allocated together so acquiring a later slot never reallocates the
  /// pool while a reference to an earlier slot of the same depth is live
  /// (references across recursion levels are never held across calls).
  std::vector<char>& Mask(std::size_t depth, std::size_t slot) {
    if ((depth + 1) * 3 > masks_.size()) masks_.resize((depth + 1) * 3);
    std::vector<char>& mask = masks_[depth * 3 + slot];
    mask.assign(p_.size(), 0);
    return mask;
  }

  /// Greedy solution over a subset, used once the node budget is spent.
  std::pair<double, std::vector<int>> Greedy(const std::vector<int>& alive) {
    std::vector<int> order = alive;
    std::sort(order.begin(), order.end(), [this](int a, int b) {
      const double wa = p_.weights[static_cast<std::size_t>(a)];
      const double wb = p_.weights[static_cast<std::size_t>(b)];
      if (wa != wb) return wa > wb;
      return a < b;
    });
    // Blocking a vertex outside `alive` is harmless: only alive vertices
    // are ever consulted.
    std::vector<char> blocked(p_.size(), 0);
    double weight = 0.0;
    std::vector<int> chosen;
    for (int v : order) {
      if (blocked[static_cast<std::size_t>(v)] != 0) continue;
      chosen.push_back(v);
      weight += p_.weights[static_cast<std::size_t>(v)];
      for (int u : p_.adjacency[static_cast<std::size_t>(v)]) {
        blocked[static_cast<std::size_t>(u)] = 1;
      }
    }
    return {weight, std::move(chosen)};
  }

  const MisProblem& p_;
  std::size_t budget_;
  std::size_t nodes_ = 0;
  bool exhausted_ = false;
  std::vector<std::vector<char>> masks_;
};

}  // namespace

MisSolution SolveMwisGreedy(const MisProblem& problem) {
  const std::size_t n = problem.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&problem](int a, int b) {
    const auto da = static_cast<double>(
        problem.adjacency[static_cast<std::size_t>(a)].size());
    const auto db = static_cast<double>(
        problem.adjacency[static_cast<std::size_t>(b)].size());
    const double sa = problem.weights[static_cast<std::size_t>(a)] / (da + 1.0);
    const double sb = problem.weights[static_cast<std::size_t>(b)] / (db + 1.0);
    if (sa != sb) return sa > sb;
    return a < b;
  });

  std::vector<bool> taken(n, false), blocked(n, false);
  for (int v : order) {
    const auto vi = static_cast<std::size_t>(v);
    if (blocked[vi]) continue;
    taken[vi] = true;
    for (int u : problem.adjacency[vi]) {
      blocked[static_cast<std::size_t>(u)] = true;
    }
  }

  // 1-swap improvement: add any free vertex; swap in a vertex that beats
  // its single taken neighbor.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (taken[v]) continue;
      int conflict = -1;
      bool feasible = true;
      for (int u : problem.adjacency[v]) {
        if (taken[static_cast<std::size_t>(u)]) {
          if (conflict >= 0) {
            feasible = false;
            break;
          }
          conflict = u;
        }
      }
      if (!feasible) continue;
      if (conflict < 0) {
        taken[v] = true;
        improved = true;
      } else if (problem.weights[v] >
                 problem.weights[static_cast<std::size_t>(conflict)]) {
        taken[static_cast<std::size_t>(conflict)] = false;
        taken[v] = true;
        improved = true;
      }
    }
  }

  MisSolution sol;
  for (std::size_t v = 0; v < n; ++v) {
    if (taken[v]) {
      sol.chosen.push_back(static_cast<int>(v));
      sol.weight += problem.weights[v];
    }
  }
  sol.optimal = false;
  return sol;
}

MisSolution SolveMwis(const MisProblem& problem, std::size_t node_budget) {
  const std::size_t n = problem.size();
  if (n == 0) return MisSolution{{}, 0.0, true};

  ComponentSolver solver(problem, node_budget);
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  auto [weight, chosen] = solver.Solve(std::move(all));

  MisSolution sol;
  sol.weight = weight;
  sol.chosen = std::move(chosen);
  sol.optimal = !solver.exhausted();
  sol.nodes = solver.nodes();
  std::sort(sol.chosen.begin(), sol.chosen.end());

  // Under budget exhaustion parts of the answer are greedy; make sure we
  // never return something worse than the plain greedy baseline.
  if (!sol.optimal) {
    MisSolution greedy = SolveMwisGreedy(problem);
    if (greedy.weight > sol.weight) {
      greedy.nodes = sol.nodes;
      return greedy;
    }
  }
  return sol;
}

}  // namespace traceweaver
