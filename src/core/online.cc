#include "core/online.h"

#include <algorithm>
#include <unordered_set>

namespace traceweaver {

OnlineTraceWeaver::OnlineTraceWeaver(CallGraph graph, OnlineOptions options)
    : graph_(std::move(graph)), options_(options) {}

void OnlineTraceWeaver::Ingest(const Span& span) {
  if (!started_ || span.client_send < next_window_start_) {
    // First span (or an earlier-than-expected one) anchors the window grid.
    if (!started_) {
      next_window_start_ = span.client_send;
      started_ = true;
    }
  }
  buffer_.push_back(span);
}

WindowResult OnlineTraceWeaver::CloseWindow(TimeNs window_start,
                                            TimeNs window_end) {
  WindowResult result;
  result.window_start = window_start;
  result.window_end = window_end;

  if (buffer_.empty()) return result;

  // Reconstruct over the full buffer (children of closing parents may have
  // been buffered in earlier windows' tails), then commit only the parents
  // whose processing window lies within the closed window.
  TraceWeaver weaver(graph_, options_.weaver);
  const TraceWeaverOutput out = weaver.Reconstruct(buffer_);

  std::unordered_set<SpanId> closing;
  for (const Span& s : buffer_) {
    if (s.server_recv >= window_start && s.server_recv < window_end &&
        s.client_recv <= window_end + options_.margin) {
      closing.insert(s.id);
    }
  }

  std::unordered_set<SpanId> consumed;
  for (const ContainerResult& c : out.containers) {
    for (const ParentResult& p : c.parents) {
      if (closing.count(p.parent) == 0 || !p.Mapped()) continue;
      ++result.parents_committed;
      const CandidateMapping& m =
          p.ranked[static_cast<std::size_t>(p.chosen)];
      for (SpanId child : m.children) {
        if (child == kSkippedChild) continue;
        result.assignment[child] = p.parent;
        committed_[child] = p.parent;
        consumed.insert(child);
      }
    }
  }

  // Drop consumed children and fully-expired closing parents from the
  // buffer; keep spans that may still serve later windows.
  std::vector<Span> remaining;
  remaining.reserve(buffer_.size());
  for (Span& s : buffer_) {
    const bool expired =
        closing.count(s.id) > 0 || consumed.count(s.id) > 0 ||
        s.client_recv + options_.margin < window_start;
    if (!expired) remaining.push_back(std::move(s));
  }
  buffer_ = std::move(remaining);
  return result;
}

std::vector<WindowResult> OnlineTraceWeaver::Advance(TimeNs watermark) {
  std::vector<WindowResult> results;
  if (!started_) return results;
  while (next_window_start_ + options_.window + options_.margin <=
         watermark) {
    const TimeNs start = next_window_start_;
    const TimeNs end = start + options_.window;
    results.push_back(CloseWindow(start, end));
    next_window_start_ = end;
  }
  return results;
}

std::vector<WindowResult> OnlineTraceWeaver::Flush() {
  std::vector<WindowResult> results;
  if (!started_) return results;
  while (!buffer_.empty()) {
    TimeNs max_recv = buffer_.front().client_recv;
    for (const Span& s : buffer_) max_recv = std::max(max_recv, s.client_recv);
    const TimeNs start = next_window_start_;
    const TimeNs end = std::max(start + options_.window, max_recv + 1);
    results.push_back(CloseWindow(start, end));
    next_window_start_ = end;
    if (results.back().parents_committed == 0 &&
        results.back().assignment.empty()) {
      // Nothing more can make progress (e.g. only orphan children remain).
      break;
    }
  }
  return results;
}

}  // namespace traceweaver
