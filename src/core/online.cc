#include "core/online.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "trace/checkpoint.h"
#include "trace/jsonl_io.h"

namespace traceweaver {
namespace {

/// Approximate heap footprint of one buffered span, for the byte budget.
std::size_t ApproxSpanBytes(const Span& s) {
  return sizeof(Span) + s.caller.size() + s.callee.size() +
         s.endpoint.size();
}

std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Wraps a serialized span line with checkpoint type tags: inserts
/// `"ckpt":"<tag>"[,extra]` right after the opening brace so the span
/// parser still sees its own keys at top level.
std::string WrapSpanLine(const char* tag, const Span& span,
                         const std::string& extra_fields) {
  std::string span_json = SpanToJson(span, /*include_ground_truth=*/true);
  std::string out = "{\"ckpt\":\"";
  out += tag;
  out += '"';
  if (!extra_fields.empty()) {
    out += ',';
    out += extra_fields;
  }
  out += ',';
  out += span_json.substr(1);  // Drop the original '{'.
  return out;
}

}  // namespace

OnlineTraceWeaver::OnlineTraceWeaver(CallGraph graph, OnlineOptions options)
    : graph_(std::move(graph)), options_(options),
      prov_(options.provenance) {
  if (options_.metrics != nullptr) {
    metrics_ = obs::OnlineMetrics(*options_.metrics);
  }
}

OnlineTraceWeaver::~OnlineTraceWeaver() = default;
OnlineTraceWeaver::OnlineTraceWeaver(OnlineTraceWeaver&&) noexcept = default;
OnlineTraceWeaver& OnlineTraceWeaver::operator=(OnlineTraceWeaver&&) noexcept =
    default;

void OnlineTraceWeaver::Ingest(const Span& span) {
  if (options_.skew_correct) {
    // Observe before correcting: the estimator must see raw cross-vantage
    // gaps, and the ordering replays identically from a checkpoint.
    skew_estimator_.ObserveSpan(span);
    Span corrected = span;
    if (skew_estimator_.CorrectSpan(corrected) && prov_) {
      // The applied correction is the callee vantage's frame offset (the
      // caller side moved by its own frame's); both are stream-derived,
      // so a checkpoint replay re-records the identical event.
      prov_.Record(obs::ProvEventType::kSkewCorrect, span.id,
                   skew_estimator_.FrameOffsetNs(
                       {span.callee, span.callee_replica}),
                   span.callee + '@' +
                       std::to_string(span.callee_replica));
    }
    IngestCorrected(corrected);
    return;
  }
  IngestCorrected(span);
}

void OnlineTraceWeaver::IngestCorrected(const Span& span) {
  ++stats_.ingested;
  metrics_.spans_ingested.Inc();
  if (!started_) {
    // First span anchors the window grid.
    next_window_start_ = span.client_send;
    started_ = true;
  }
  if (span.server_recv < next_window_start_) {
    if (stats_.windows_closed == 0 && stats_.windows_shed == 0) {
      // Nothing committed yet: slide the grid anchor back instead of
      // misrouting early arrivals (completion-ordered streams deliver
      // the first request's fast leaves before its root).
      next_window_start_ = std::min(next_window_start_, span.client_send);
    } else {
      // Its committing window already closed (or was shed): a child's
      // server_recv is never earlier than its parent's, so the parent
      // can no longer be committed normally -- route to the graft path.
      HandleLate(span);
      return;
    }
  }
  buffer_bytes_ += ApproxSpanBytes(span);
  buffer_.push_back(span);
  EnforceBudget();
  UpdateBufferGauges();
}

bool OnlineTraceWeaver::OverBudget() const {
  return (options_.max_buffer_spans > 0 &&
          buffer_.size() > options_.max_buffer_spans) ||
         (options_.max_buffer_bytes > 0 &&
          buffer_bytes_ > options_.max_buffer_bytes);
}

void OnlineTraceWeaver::EnforceBudget() {
  while (OverBudget()) {
    TimeNs max_recv = std::numeric_limits<TimeNs>::min();
    for (const Span& s : buffer_) max_recv = std::max(max_recv, s.server_recv);
    if (max_recv >= next_window_start_ + options_.window) {
      ShedOldestWindow();
      continue;
    }
    // The backlog fits a single window and is still over budget: reject
    // the newest arrival instead of corrupting the window mid-fill.
    buffer_bytes_ -= ApproxSpanBytes(buffer_.back());
    pending_orphans_.push_back(buffer_.back().id);
    prov_.Record(obs::ProvEventType::kAdmissionDrop, buffer_.back().id);
    buffer_.pop_back();
    ++stats_.admission_drops;
    metrics_.admission_drops.Inc();
    break;
  }
}

void OnlineTraceWeaver::ShedOldestWindow() {
  const TimeNs shed_end = next_window_start_ + options_.window;
  WindowResult shed;
  shed.window_start = next_window_start_;
  shed.window_end = shed_end;
  shed.shed = true;
  shed.degradation_level = level_;

  // Shed the whole time-prefix up to the boundary: the oldest unclosed
  // window plus any dead tails of already-closed windows. Children are
  // never earlier than their parents, so surviving windows keep complete
  // candidate sets.
  std::vector<Span> remaining;
  remaining.reserve(buffer_.size());
  for (Span& s : buffer_) {
    if (s.server_recv < shed_end) {
      buffer_bytes_ -= ApproxSpanBytes(s);
      shed.orphans.push_back(s.id);
    } else {
      remaining.push_back(std::move(s));
    }
  }
  buffer_ = std::move(remaining);
  std::sort(shed.orphans.begin(), shed.orphans.end());
  for (const SpanId id : shed.orphans) {
    prov_.Record(obs::ProvEventType::kWindowShed, id, shed.window_start);
  }
  next_window_start_ = shed_end;

  stats_.windows_shed += 1;
  stats_.spans_shed += shed.orphans.size();
  metrics_.windows_shed.Inc();
  metrics_.spans_shed.Inc(shed.orphans.size());
  pending_results_.push_back(std::move(shed));
}

void OnlineTraceWeaver::HandleLate(const Span& span) {
  ++stats_.late_spans;
  metrics_.late_spans.Inc();
  if (late_pool_.size() >= options_.max_late_spans && !late_pool_.empty()) {
    // Bounded pool: the oldest entry makes room and becomes an orphan.
    pending_orphans_.push_back(late_pool_.front().span.id);
    prov_.Record(obs::ProvEventType::kLateDrop, late_pool_.front().span.id);
    late_pool_.erase(late_pool_.begin());
    ++stats_.late_dropped;
    metrics_.late_dropped.Inc();
  }
  LateSpan late;
  late.span = span;
  late.deadline = next_window_start_ +
                  static_cast<DurationNs>(options_.graft_retention_windows) *
                      options_.window;
  late_pool_.push_back(std::move(late));
}

long long OnlineTraceWeaver::GraftSlack(const std::string& caller,
                                        const std::string& callee) const {
  if (options_.skew_correct) {
    // Query the estimator directly instead of the map cached at the last
    // window close: the current estimator state is exactly what a
    // checkpoint restores, so grafting stays bit-identical across a kill
    // between two closes.
    const auto slacks = skew_estimator_.EdgeSlacks();
    const auto it = slacks.find({caller, callee});
    if (it != slacks.end()) return it->second;
    return options_.weaver.optimizer.params.constraint_slack_ns;
  }
  return options_.weaver.optimizer.params.SlackFor(caller, callee);
}

SpanId OnlineTraceWeaver::TryGraft(const Span& span) {
  if (committed_.count(span.id) > 0) return kInvalidSpanId;
  const long long slack = GraftSlack(span.caller, span.callee);
  int best = -1;
  TimeNs best_gap = 0;
  for (std::size_t i = 0; i < graft_slots_.size(); ++i) {
    const GraftSlot& s = graft_slots_[i];
    if (s.call_service != span.callee || s.call_endpoint != span.endpoint) {
      continue;
    }
    if (s.parent_service != span.caller) continue;
    if (s.callee_replica != span.caller_replica) continue;
    if (span.client_send + slack < s.server_recv) continue;
    if (span.client_recv > s.server_send + slack) continue;
    const TimeNs gap = span.client_send - s.server_recv;
    const bool better =
        best < 0 || gap < best_gap ||
        (gap == best_gap &&
         std::tie(s.parent, s.stage, s.call) <
             std::tie(graft_slots_[static_cast<std::size_t>(best)].parent,
                      graft_slots_[static_cast<std::size_t>(best)].stage,
                      graft_slots_[static_cast<std::size_t>(best)].call));
    if (better) {
      best = static_cast<int>(i);
      best_gap = gap;
    }
  }
  if (best < 0) return kInvalidSpanId;
  const SpanId parent = graft_slots_[static_cast<std::size_t>(best)].parent;
  graft_slots_.erase(graft_slots_.begin() + best);
  return parent;
}

void OnlineTraceWeaver::ServiceLatePool(WindowResult& result) {
  std::vector<LateSpan> keep;
  keep.reserve(late_pool_.size());
  for (LateSpan& late : late_pool_) {
    const SpanId parent = TryGraft(late.span);
    if (parent != kInvalidSpanId) {
      committed_[late.span.id] = parent;
      result.assignment[late.span.id] = parent;
      prov_.Record(obs::ProvEventType::kLateGraft, late.span.id,
                   static_cast<std::int64_t>(parent));
      ++result.late_grafted;
      ++stats_.late_grafted;
      metrics_.late_grafted.Inc();
    } else if (next_window_start_ > late.deadline) {
      result.orphans.push_back(late.span.id);
      prov_.Record(obs::ProvEventType::kLateExpire, late.span.id,
                   late.deadline);
      ++stats_.late_orphans;
      metrics_.late_orphans.Inc();
    } else {
      keep.push_back(std::move(late));
    }
  }
  late_pool_ = std::move(keep);

  // Prune graft slots too old for any in-flight child to still match.
  const TimeNs cutoff =
      next_window_start_ -
      static_cast<DurationNs>(options_.graft_retention_windows) *
          options_.window;
  graft_slots_.erase(
      std::remove_if(graft_slots_.begin(), graft_slots_.end(),
                     [&](const GraftSlot& s) {
                       return s.server_send + options_.margin < cutoff;
                     }),
      graft_slots_.end());
}

void OnlineTraceWeaver::RecordPosterior(
    const Span& parent, const InvocationPlan& plan,
    const CandidateMapping& mapping,
    const std::map<SpanId, const Span*>& by_id) {
  const auto positions = plan.Positions();
  // The enabling event for stage 0 is the parent's arrival; for later
  // stages the completion of the previous stage's slowest filled child
  // (unobservable positions keep the previous enable -- an approximation,
  // matching the delay model's dependency-edge semantics).
  TimeNs enable = parent.server_recv;
  std::size_t cur_stage = 0;
  TimeNs stage_max_end = std::numeric_limits<TimeNs>::min();
  const std::size_t n = std::min(mapping.children.size(), positions.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (positions[i].stage != cur_stage) {
      if (stage_max_end != std::numeric_limits<TimeNs>::min()) {
        enable = stage_max_end;
      }
      cur_stage = positions[i].stage;
      stage_max_end = std::numeric_limits<TimeNs>::min();
    }
    const SpanId child_id = mapping.children[i];
    if (child_id == kSkippedChild) continue;
    const auto it = by_id.find(child_id);
    if (it == by_id.end()) continue;
    const Span& child = *it->second;
    const double gap = static_cast<double>(child.client_send - enable);
    DelayPosterior& post =
        posteriors_[DelayKey{parent.callee, parent.endpoint,
                             static_cast<int>(positions[i].stage),
                             static_cast<int>(positions[i].call)}];
    // Welford update: numerically stable online mean/variance.
    post.count += 1;
    const double delta = gap - post.mean;
    post.mean += delta / static_cast<double>(post.count);
    post.m2 += delta * (gap - post.mean);
    stage_max_end = std::max(stage_max_end, child.client_recv);
  }
}

TraceWeaver& OnlineTraceWeaver::WeaverForLevel() {
  if (weaver_cache_ == nullptr || weaver_cache_level_ != level_) {
    TraceWeaverOptions opts = options_.weaver;
    opts.optimizer.params = opts.optimizer.params.DegradedForOverload(level_);
    if (level_ >= 3) {
      // The ladder's GMM rung also caps EM work inside each refit.
      opts.optimizer.gmm.em_iterations =
          std::min<std::size_t>(opts.optimizer.gmm.em_iterations, 10);
    }
    weaver_cache_ = std::make_unique<TraceWeaver>(graph_, opts);
    weaver_cache_level_ = level_;
  }
  return *weaver_cache_;
}

void OnlineTraceWeaver::UpdateBufferGauges() {
  metrics_.buffer_spans.Set(static_cast<std::int64_t>(buffer_.size()));
  metrics_.buffer_bytes.Set(static_cast<std::int64_t>(buffer_bytes_));
}

WindowResult OnlineTraceWeaver::CloseWindow(TimeNs window_start,
                                            TimeNs window_end) {
  const auto t0 = std::chrono::steady_clock::now();
  WindowResult result;
  result.window_start = window_start;
  result.window_end = window_end;
  result.degradation_level = level_;
  result.orphans = std::move(pending_orphans_);
  pending_orphans_.clear();

  if (options_.skew_correct) {
    // Refresh the per-edge slack map from the estimator's current spread;
    // the cached weaver is rebuilt only when the map actually changes.
    auto slacks = skew_estimator_.EdgeSlacks();
    if (slacks != options_.weaver.optimizer.params.edge_slack_ns) {
      options_.weaver.optimizer.params.edge_slack_ns = std::move(slacks);
      weaver_cache_.reset();
    }
  }

  if (!buffer_.empty()) {
    // Reconstruct over the full buffer (children of closing parents may
    // have been buffered in earlier windows' tails), then commit only the
    // parents whose processing window lies within the closed window.
    const TraceWeaverOutput out = WeaverForLevel().Reconstruct(buffer_);
    if (options_.weaver.compute_quality) {
      result.trace_quality = out.quality.traces;
    }

    std::map<SpanId, const Span*> by_id;
    for (const Span& s : buffer_) by_id[s.id] = &s;

    std::unordered_set<SpanId> closing;
    for (const Span& s : buffer_) {
      if (s.server_recv >= window_start && s.server_recv < window_end &&
          s.client_recv <= window_end + options_.margin) {
        closing.insert(s.id);
      }
    }

    std::unordered_set<SpanId> consumed;
    for (const ContainerResult& c : out.containers) {
      // Twin adoptions ride their parent's commit: when the parent closes
      // in this window, the adopted duplicate is committed and consumed
      // with the regularly-assigned children.
      std::unordered_map<SpanId, std::vector<SpanId>> adopted_of;
      for (const auto& [child, parent] : c.adopted) {
        adopted_of[parent].push_back(child);
      }
      for (const ParentResult& p : c.parents) {
        if (closing.count(p.parent) == 0 || !p.Mapped()) continue;
        ++result.parents_committed;
        if (level_ > 0) {
          prov_.Record(obs::ProvEventType::kDegradedSolve, p.parent, level_);
        }
        const CandidateMapping& m =
            p.ranked[static_cast<std::size_t>(p.chosen)];
        for (SpanId child : m.children) {
          if (child == kSkippedChild) continue;
          result.assignment[child] = p.parent;
          committed_[child] = p.parent;
          consumed.insert(child);
        }
        if (const auto ait = adopted_of.find(p.parent);
            ait != adopted_of.end()) {
          for (SpanId child : ait->second) {
            result.assignment[child] = p.parent;
            committed_[child] = p.parent;
            consumed.insert(child);
          }
        }
        const Span* parent_span = by_id.at(p.parent);
        const InvocationPlan* plan =
            graph_.PlanFor({parent_span->callee, parent_span->endpoint});
        if (plan == nullptr) continue;
        RecordPosterior(*parent_span, *plan, m, by_id);
        // Skipped positions stay open for late-span grafting.
        const auto positions = plan->Positions();
        const std::size_t n =
            std::min(m.children.size(), positions.size());
        for (std::size_t i = 0; i < n; ++i) {
          if (m.children[i] != kSkippedChild) continue;
          const BackendCall& call = plan->At(positions[i]);
          GraftSlot slot;
          slot.parent = p.parent;
          slot.parent_service = parent_span->callee;
          slot.parent_endpoint = parent_span->endpoint;
          slot.server_recv = parent_span->server_recv;
          slot.server_send = parent_span->server_send;
          slot.callee_replica = parent_span->callee_replica;
          slot.stage = static_cast<int>(positions[i].stage);
          slot.call = static_cast<int>(positions[i].call);
          slot.call_service = call.service;
          slot.call_endpoint = call.endpoint;
          graft_slots_.push_back(std::move(slot));
        }
      }
    }

    // Drop consumed children and fully-expired closing parents from the
    // buffer; keep spans that may still serve later windows.
    std::vector<Span> remaining;
    remaining.reserve(buffer_.size());
    for (Span& s : buffer_) {
      const bool expired =
          closing.count(s.id) > 0 || consumed.count(s.id) > 0 ||
          s.client_recv + options_.margin < window_start;
      if (expired) {
        buffer_bytes_ -= ApproxSpanBytes(s);
      } else {
        remaining.push_back(std::move(s));
      }
    }
    buffer_ = std::move(remaining);
  }

  {
    const auto graft_t0 = std::chrono::steady_clock::now();
    ServiceLatePool(result);
    result.graft_wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - graft_t0)
            .count();
  }

  ++stats_.windows_closed;
  stats_.parents_committed += result.parents_committed;
  metrics_.windows_closed.Inc();
  metrics_.parents_committed.Inc(result.parents_committed);
  UpdateBufferGauges();
  if (options_.skew_correct && options_.metrics != nullptr) {
    skew_estimator_.FlushMetrics(*options_.metrics);
  }

  const DurationNs wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  result.close_wall_ns = wall;
  metrics_.window_close_ns.Observe(static_cast<std::uint64_t>(wall));
  if (options_.window_close_deadline > 0) {
    if (wall > options_.window_close_deadline) {
      ++stats_.deadline_misses;
      metrics_.deadline_misses.Inc();
      if (level_ < kMaxOverloadLevel) {
        ++level_;
        ++stats_.degrade_up_steps;
        metrics_.degrade_steps_up.Inc();
      }
    } else if (wall * 2 < options_.window_close_deadline && level_ > 0) {
      --level_;
      ++stats_.degrade_down_steps;
      metrics_.degrade_steps_down.Inc();
    }
    metrics_.degradation_level.Set(level_);
  }
  return result;
}

std::vector<WindowResult> OnlineTraceWeaver::Advance(TimeNs watermark) {
  std::vector<WindowResult> results;
  if (!started_) return results;
  if (watermark < high_watermark_) {
    // Out-of-order source: never roll the grid back; clamp and count.
    ++stats_.watermark_regressions;
    metrics_.watermark_regressions.Inc();
    watermark = high_watermark_;
  } else {
    high_watermark_ = watermark;
  }
  if (!pending_results_.empty()) {
    results = std::move(pending_results_);
    pending_results_.clear();
  }
  while (next_window_start_ + options_.window + options_.margin <=
         watermark) {
    const TimeNs start = next_window_start_;
    const TimeNs end = start + options_.window;
    results.push_back(CloseWindow(start, end));
    next_window_start_ = end;
  }
  return results;
}

std::vector<WindowResult> OnlineTraceWeaver::Flush() {
  std::vector<WindowResult> results;
  if (!started_) return results;
  if (!pending_results_.empty()) {
    results = std::move(pending_results_);
    pending_results_.clear();
  }
  while (!buffer_.empty()) {
    TimeNs max_recv = buffer_.front().client_recv;
    for (const Span& s : buffer_) max_recv = std::max(max_recv, s.client_recv);
    const TimeNs start = next_window_start_;
    const TimeNs end = std::max(start + options_.window, max_recv + 1);
    results.push_back(CloseWindow(start, end));
    next_window_start_ = end;
    if (results.back().parents_committed == 0 &&
        results.back().assignment.empty()) {
      // Nothing more can make progress (e.g. only orphan children remain).
      break;
    }
  }

  // End of stream: whatever is still held becomes an explicit orphan.
  if (!buffer_.empty() || !late_pool_.empty() || !pending_orphans_.empty()) {
    if (results.empty()) {
      WindowResult tail;
      tail.window_start = next_window_start_;
      tail.window_end = next_window_start_;
      tail.degradation_level = level_;
      results.push_back(std::move(tail));
    }
    WindowResult& last = results.back();
    for (Span& s : buffer_) last.orphans.push_back(s.id);
    buffer_.clear();
    buffer_bytes_ = 0;
    for (LateSpan& late : late_pool_) {
      const SpanId parent = TryGraft(late.span);
      if (parent != kInvalidSpanId) {
        committed_[late.span.id] = parent;
        last.assignment[late.span.id] = parent;
        prov_.Record(obs::ProvEventType::kLateGraft, late.span.id,
                     static_cast<std::int64_t>(parent));
        ++last.late_grafted;
        ++stats_.late_grafted;
        metrics_.late_grafted.Inc();
      } else {
        last.orphans.push_back(late.span.id);
        prov_.Record(obs::ProvEventType::kLateExpire, late.span.id,
                     late.deadline);
        ++stats_.late_orphans;
        metrics_.late_orphans.Inc();
      }
    }
    late_pool_.clear();
    for (SpanId id : pending_orphans_) last.orphans.push_back(id);
    pending_orphans_.clear();
    UpdateBufferGauges();
  }
  return results;
}

// ---------------------------------------------------------------------
// Checkpoint/restore (schema traceweaver.checkpoint.v1; IO layer in
// trace/checkpoint.h).

void OnlineTraceWeaver::SaveCheckpoint(
    std::ostream& out,
    const std::map<std::string, std::uint64_t>& extra) const {
  ChecksummedWriter w(out, kCheckpointSchema);

  std::string header = "{\"schema\":\"";
  header += kCheckpointSchema;
  header += "\",\"started\":";
  header += started_ ? '1' : '0';
  header += ",\"next_window_start\":" + std::to_string(next_window_start_);
  header += ",\"high_watermark\":" + std::to_string(high_watermark_);
  header += ",\"level\":" + std::to_string(level_);
  header += '}';
  w.WriteLine(header);

  {
    const Stats& s = stats_;
    std::string line = "{\"ckpt\":\"stats\"";
    const std::pair<const char*, std::uint64_t> fields[] = {
        {"ingested", s.ingested},
        {"windows_closed", s.windows_closed},
        {"parents_committed", s.parents_committed},
        {"windows_shed", s.windows_shed},
        {"spans_shed", s.spans_shed},
        {"admission_drops", s.admission_drops},
        {"late_spans", s.late_spans},
        {"late_grafted", s.late_grafted},
        {"late_orphans", s.late_orphans},
        {"late_dropped", s.late_dropped},
        {"watermark_regressions", s.watermark_regressions},
        {"deadline_misses", s.deadline_misses},
        {"degrade_up_steps", s.degrade_up_steps},
        {"degrade_down_steps", s.degrade_down_steps},
    };
    for (const auto& [key, value] : fields) {
      line += ",\"";
      line += key;
      line += "\":" + std::to_string(value);
    }
    line += '}';
    w.WriteLine(line);
  }

  for (const Span& s : buffer_) {
    w.WriteLine(WrapSpanLine("buffer", s, ""));
  }
  for (const LateSpan& late : late_pool_) {
    w.WriteLine(WrapSpanLine(
        "late", late.span,
        "\"deadline\":" + std::to_string(late.deadline)));
  }
  {
    // Sorted so identical state always serializes to identical bytes.
    std::vector<std::pair<SpanId, SpanId>> commits(committed_.begin(),
                                                   committed_.end());
    std::sort(commits.begin(), commits.end());
    for (const auto& [child, parent] : commits) {
      w.WriteLine("{\"ckpt\":\"commit\",\"child\":" + std::to_string(child) +
                  ",\"parent\":" + std::to_string(parent) + '}');
    }
  }
  for (const GraftSlot& s : graft_slots_) {
    std::string line = "{\"ckpt\":\"slot\",\"parent\":";
    line += std::to_string(s.parent);
    line += ',';
    ckpt::AppendStrField(line, "parent_service", s.parent_service);
    line += ',';
    ckpt::AppendStrField(line, "parent_endpoint", s.parent_endpoint);
    line += ",\"server_recv\":" + std::to_string(s.server_recv);
    line += ",\"server_send\":" + std::to_string(s.server_send);
    line += ",\"replica\":" + std::to_string(s.callee_replica);
    line += ",\"stage\":" + std::to_string(s.stage);
    line += ",\"call\":" + std::to_string(s.call);
    line += ',';
    ckpt::AppendStrField(line, "service", s.call_service);
    line += ',';
    ckpt::AppendStrField(line, "endpoint", s.call_endpoint);
    line += '}';
    w.WriteLine(line);
  }
  for (const std::string& line : skew_estimator_.CheckpointLines()) {
    w.WriteLine(line);
  }
  if (options_.provenance != nullptr) {
    // Pending (uncommitted) decision-provenance events ride the same
    // stream, so a kill -9 resume reproduces byte-identical provenance.
    for (const std::string& line : options_.provenance->CheckpointLines()) {
      w.WriteLine(line);
    }
  }
  for (const auto& [key, post] : posteriors_) {
    std::string line = "{\"ckpt\":\"posterior\",";
    ckpt::AppendStrField(line, "service", key.service);
    line += ',';
    ckpt::AppendStrField(line, "endpoint", key.endpoint);
    line += ",\"stage\":" + std::to_string(key.stage);
    line += ",\"call\":" + std::to_string(key.call);
    line += ",\"count\":" + std::to_string(post.count);
    line += ",\"mean\":" + FmtDouble(post.mean);
    line += ",\"m2\":" + FmtDouble(post.m2);
    line += '}';
    w.WriteLine(line);
  }
  for (const WindowResult& pending : pending_results_) {
    std::string line = "{\"ckpt\":\"pendingw\",\"start\":";
    line += std::to_string(pending.window_start);
    line += ",\"end\":" + std::to_string(pending.window_end);
    line += ",\"shed\":";
    line += pending.shed ? '1' : '0';
    line += ",\"level\":" + std::to_string(pending.degradation_level);
    line += '}';
    w.WriteLine(line);
    for (SpanId id : pending.orphans) {
      w.WriteLine("{\"ckpt\":\"pendingo\",\"id\":" + std::to_string(id) +
                  '}');
    }
  }
  for (SpanId id : pending_orphans_) {
    w.WriteLine("{\"ckpt\":\"orphan\",\"id\":" + std::to_string(id) + '}');
  }
  for (const auto& [key, value] : extra) {
    std::string line = "{\"ckpt\":\"extra\",";
    ckpt::AppendStrField(line, "key", key);
    line += ",\"value\":" + std::to_string(value);
    line += '}';
    w.WriteLine(line);
  }
  w.Finish();
}

bool OnlineTraceWeaver::LoadCheckpoint(
    std::istream& in, std::string* error,
    std::map<std::string, std::uint64_t>* extra) {
  const auto lines = ReadChecksummedLines(in, kCheckpointSchema, error);
  if (!lines) return false;
  if (lines->empty()) {
    if (error != nullptr) *error = "checkpoint has no header line";
    return false;
  }
  const std::string& header = (*lines)[0];
  const auto schema = ckpt::FieldStr(header, "schema");
  if (!schema || *schema != kCheckpointSchema) {
    if (error != nullptr) *error = "checkpoint header schema mismatch";
    return false;
  }

  // Parse into fresh state first so a malformed record leaves this weaver
  // untouched.
  OnlineTraceWeaver fresh(graph_, options_);
  std::vector<obs::ProvEvent> prov_events;
  fresh.started_ = ckpt::FieldU64(header, "started").value_or(0) != 0;
  fresh.next_window_start_ =
      ckpt::FieldI64(header, "next_window_start").value_or(0);
  fresh.high_watermark_ = ckpt::FieldI64(header, "high_watermark").value_or(0);
  fresh.level_ = static_cast<int>(ckpt::FieldI64(header, "level").value_or(0));

  WindowResult* open_pending = nullptr;
  for (std::size_t i = 1; i < lines->size(); ++i) {
    const std::string& line = (*lines)[i];
    const auto type = ckpt::FieldStr(line, "ckpt");
    if (!type) {
      if (error != nullptr) {
        *error = "checkpoint record " + std::to_string(i) + " has no type";
      }
      return false;
    }
    const auto bad = [&](const char* what) {
      if (error != nullptr) {
        *error = "checkpoint record " + std::to_string(i) +
                 " malformed: " + what;
      }
      return false;
    };
    if (*type == "buffer" || *type == "late") {
      const auto span = SpanFromJson(line);
      if (!span) return bad("unparseable span");
      if (*type == "buffer") {
        fresh.buffer_bytes_ += ApproxSpanBytes(*span);
        fresh.buffer_.push_back(*span);
      } else {
        LateSpan late;
        late.span = *span;
        late.deadline = ckpt::FieldI64(line, "deadline").value_or(0);
        fresh.late_pool_.push_back(std::move(late));
      }
    } else if (*type == "commit") {
      const auto child = ckpt::FieldU64(line, "child");
      const auto parent = ckpt::FieldU64(line, "parent");
      if (!child || !parent) return bad("commit ids");
      fresh.committed_[*child] = *parent;
    } else if (*type == "slot") {
      GraftSlot slot;
      const auto parent = ckpt::FieldU64(line, "parent");
      const auto pservice = ckpt::FieldStr(line, "parent_service");
      const auto pendpoint = ckpt::FieldStr(line, "parent_endpoint");
      const auto service = ckpt::FieldStr(line, "service");
      const auto endpoint = ckpt::FieldStr(line, "endpoint");
      if (!parent || !pservice || !pendpoint || !service || !endpoint) {
        return bad("slot fields");
      }
      slot.parent = *parent;
      slot.parent_service = *pservice;
      slot.parent_endpoint = *pendpoint;
      slot.server_recv = ckpt::FieldI64(line, "server_recv").value_or(0);
      slot.server_send = ckpt::FieldI64(line, "server_send").value_or(0);
      slot.callee_replica =
          static_cast<int>(ckpt::FieldI64(line, "replica").value_or(0));
      slot.stage = static_cast<int>(ckpt::FieldI64(line, "stage").value_or(0));
      slot.call = static_cast<int>(ckpt::FieldI64(line, "call").value_or(0));
      slot.call_service = *service;
      slot.call_endpoint = *endpoint;
      fresh.graft_slots_.push_back(std::move(slot));
    } else if (*type == "posterior") {
      const auto service = ckpt::FieldStr(line, "service");
      const auto endpoint = ckpt::FieldStr(line, "endpoint");
      if (!service || !endpoint) return bad("posterior key");
      DelayKey key{*service, *endpoint,
                   static_cast<int>(ckpt::FieldI64(line, "stage").value_or(0)),
                   static_cast<int>(ckpt::FieldI64(line, "call").value_or(0))};
      DelayPosterior post;
      post.count = ckpt::FieldU64(line, "count").value_or(0);
      post.mean = ckpt::FieldF64(line, "mean").value_or(0.0);
      post.m2 = ckpt::FieldF64(line, "m2").value_or(0.0);
      fresh.posteriors_[std::move(key)] = post;
    } else if (*type == "stats") {
      Stats& s = fresh.stats_;
      s.ingested = ckpt::FieldU64(line, "ingested").value_or(0);
      s.windows_closed = ckpt::FieldU64(line, "windows_closed").value_or(0);
      s.parents_committed =
          ckpt::FieldU64(line, "parents_committed").value_or(0);
      s.windows_shed = ckpt::FieldU64(line, "windows_shed").value_or(0);
      s.spans_shed = ckpt::FieldU64(line, "spans_shed").value_or(0);
      s.admission_drops = ckpt::FieldU64(line, "admission_drops").value_or(0);
      s.late_spans = ckpt::FieldU64(line, "late_spans").value_or(0);
      s.late_grafted = ckpt::FieldU64(line, "late_grafted").value_or(0);
      s.late_orphans = ckpt::FieldU64(line, "late_orphans").value_or(0);
      s.late_dropped = ckpt::FieldU64(line, "late_dropped").value_or(0);
      s.watermark_regressions =
          ckpt::FieldU64(line, "watermark_regressions").value_or(0);
      s.deadline_misses = ckpt::FieldU64(line, "deadline_misses").value_or(0);
      s.degrade_up_steps =
          ckpt::FieldU64(line, "degrade_up_steps").value_or(0);
      s.degrade_down_steps =
          ckpt::FieldU64(line, "degrade_down_steps").value_or(0);
    } else if (*type == "pendingw") {
      WindowResult pending;
      pending.window_start = ckpt::FieldI64(line, "start").value_or(0);
      pending.window_end = ckpt::FieldI64(line, "end").value_or(0);
      pending.shed = ckpt::FieldU64(line, "shed").value_or(0) != 0;
      pending.degradation_level =
          static_cast<int>(ckpt::FieldI64(line, "level").value_or(0));
      fresh.pending_results_.push_back(std::move(pending));
      open_pending = &fresh.pending_results_.back();
    } else if (*type == "pendingo") {
      const auto id = ckpt::FieldU64(line, "id");
      if (!id || open_pending == nullptr) return bad("stray pending orphan");
      open_pending->orphans.push_back(*id);
    } else if (*type == "orphan") {
      const auto id = ckpt::FieldU64(line, "id");
      if (!id) return bad("orphan id");
      fresh.pending_orphans_.push_back(*id);
    } else if (*type == "skew") {
      if (!fresh.skew_estimator_.LoadCheckpointLine(line)) {
        return bad("skew record");
      }
    } else if (*type == "prov") {
      auto event = obs::ProvEventFromJson(line);
      if (!event) return bad("prov record");
      prov_events.push_back(std::move(*event));
    } else if (*type == "extra") {
      const auto key = ckpt::FieldStr(line, "key");
      const auto value = ckpt::FieldU64(line, "value");
      if (!key || !value) return bad("extra field");
      if (extra != nullptr) (*extra)[*key] = *value;
    } else {
      return bad("unknown record type");
    }
  }

  // Re-derive the per-edge slack map from the restored estimator state so
  // grafting and the next window close behave exactly as they would have
  // without the restart.
  if (fresh.options_.skew_correct) {
    fresh.options_.weaver.optimizer.params.edge_slack_ns =
        fresh.skew_estimator_.EdgeSlacks();
  }

  // Only mutate the shared ledger once the whole checkpoint parsed; a
  // malformed record above leaves it (like the weaver) untouched.
  if (options_.provenance != nullptr) {
    options_.provenance->RestorePending(std::move(prov_events));
  }

  *this = std::move(fresh);
  UpdateBufferGauges();
  return true;
}

}  // namespace traceweaver
