// Maximum-weight independent set solver (§4.1 step 5).
//
// The paper hands each batch's conflict graph to Gurobi; we implement an
// exact branch-and-bound MWIS solver (batches are small: at most
// B spans x K candidates vertices, sparse) with a greedy + local-search
// fallback under a node budget so tail latency stays bounded.
#pragma once

#include <cstddef>
#include <vector>

namespace traceweaver {

struct MisProblem {
  /// Vertex weights; must be non-negative for the solver's pruning bound
  /// to be valid (callers shift scores accordingly).
  std::vector<double> weights;
  /// Adjacency lists (undirected conflict edges, no self-loops).
  std::vector<std::vector<int>> adjacency;

  std::size_t size() const { return weights.size(); }
};

struct MisSolution {
  std::vector<int> chosen;  ///< Vertex indices in the independent set.
  double weight = 0.0;
  bool optimal = false;  ///< True when branch and bound ran to completion.
  /// Branch-and-bound nodes explored (0 for the pure greedy path); feeds
  /// the tw_mwis_bb_nodes_total metric.
  std::size_t nodes = 0;
};

/// Solves max-weight independent set. Exact within `node_budget` B&B nodes;
/// otherwise returns the best of (B&B incumbent, greedy + 1-swap local
/// search).
MisSolution SolveMwis(const MisProblem& problem, std::size_t node_budget);

/// Greedy weight/(degree+1) heuristic with 1-swap improvement; exposed for
/// testing and ablation.
MisSolution SolveMwisGreedy(const MisProblem& problem);

}  // namespace traceweaver
