#include "core/batching.h"

#include <algorithm>

namespace traceweaver {

std::vector<Batch> MakeBatches(const std::vector<const Span*>& parents,
                               std::size_t max_batch_size,
                               BatchingStats* stats) {
  std::vector<Batch> batches;
  if (stats != nullptr) *stats = BatchingStats{};
  if (parents.empty()) return batches;
  if (max_batch_size == 0) max_batch_size = 1;

  std::size_t begin = 0;
  // Latest end time over ALL spans before index i (Theorem A.1's span j is
  // taken over the whole prefix, not just the current batch, so a forced
  // imperfect cut must not reset it).
  TimeNs latest_end = parents[0]->server_send;
  for (std::size_t i = 1; i <= parents.size(); ++i) {
    if (i == parents.size()) {
      batches.push_back(Batch{begin, i, true});
      break;
    }
    const Span& next = *parents[i];
    const bool perfect = latest_end <= next.server_recv;
    const bool forced = (i - begin) >= max_batch_size;
    if (perfect || forced) {
      batches.push_back(Batch{begin, i, perfect});
      begin = i;
    }
    latest_end = std::max(latest_end, next.server_send);
  }
  if (stats != nullptr) {
    stats->batches = batches.size();
    for (const Batch& b : batches) {
      if (!b.perfect) ++stats->imperfect;
      stats->largest = std::max(stats->largest, b.size());
    }
  }
  return batches;
}

}  // namespace traceweaver
