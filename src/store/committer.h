// The online -> store commit hook: turns the serve loop's span stream and
// per-window reconstruction results (core/online.h WindowResult) into
// whole TraceRecords committed to a TraceStore.
//
// The online weaver emits parent assignments window by window; a request
// trace becomes final only once every span that could still join it has
// been decided. The committer buffers spans, merges each window's
// assignments and per-trace quality, and seals a trace when its root's
// completion time is `settle_windows` full windows behind the latest
// closed window -- by then the root's window has closed (so every parent
// beneath it committed) and the late-graft retention period has passed.
// Spans the weaver declares definitively lost (shed windows, admission
// drops, expired late spans) are committed immediately as orphan
// fragments so nothing silently disappears between the stream and the
// store.
//
// Commit order within one process is deterministic (due roots by id);
// TraceStore::Commit is idempotent by trace id, so replaying a stream
// tail after checkpoint restore re-commits the same traces harmlessly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "core/online.h"
#include "store/store.h"
#include "store/tail_sampler.h"

namespace traceweaver::store {

struct CommitterOptions {
  /// Must mirror the OnlineOptions the weaver runs with: they define when
  /// a trace can no longer change.
  DurationNs window = Seconds(2);
  DurationNs margin = Millis(500);
  /// Full windows a rooted trace stays pending after its root completes,
  /// covering the late-graft retention period. 1 matches the online
  /// default (graft_retention_windows = 2 is measured from the span's own
  /// window, which ends before the root's).
  int settle_windows = 1;
  /// Decision-provenance ledger shared with the online weaver
  /// (obs/provenance.h). When set, every commit drains the pending events
  /// of the trace's spans into the record and stamps the settle outcome
  /// (settled / orphan_commit / finalized), so every committed trace
  /// carries a non-empty provenance block. Null leaves records
  /// byte-identical to the pre-provenance format. Not owned.
  obs::ProvenanceLedger* provenance = nullptr;
  /// Optional commit-time tail sampler (store/tail_sampler.h). When set,
  /// every sealed trace is offered to Decide() just before store commit:
  /// shed traces never reach the store and are accounted by a
  /// `sampled_out` provenance emission plus the tw_sample_* counters.
  /// Null commits everything, byte-identical to the unsampled path.
  /// Not owned.
  TailSampler* sampler = nullptr;
};

class TraceCommitter {
 public:
  /// Schema tag of the saved pending state (SaveState/LoadState).
  static constexpr const char* kStateSchema = "traceweaver.committer.v1";

  TraceCommitter(CommitterOptions options, TraceStore* store);

  /// Every span handed to OnlineTraceWeaver::Ingest.
  void OnSpan(const Span& span);

  /// Consumes the results of one Advance()/Flush() call: merges
  /// assignments and quality, commits orphans and settled traces.
  /// Returns traces committed by this call.
  std::size_t OnResults(const std::vector<WindowResult>& results);

  /// End of stream: commits every pending trace regardless of settling.
  std::size_t Finalize();

  std::size_t committed() const { return committed_; }
  std::size_t pending_spans() const { return spans_.size(); }

  /// Serializes the pending state (buffered spans, merged edges, quality
  /// rows, settle clock) as CRC-guarded `traceweaver.committer.v1` JSONL.
  /// The serve loop saves this next to the weaver checkpoint (after
  /// sealing the store) so a restart loses no settling trace: settled
  /// traces are on disk, pending ones ride the state file, and anything
  /// replayed from the source offset re-commits idempotently.
  void SaveState(std::ostream& out) const;

  /// Replaces this committer's pending state with a SaveState snapshot.
  /// Returns false (state untouched) on truncated, corrupted or
  /// schema-mismatched input, with a reason in *error.
  bool LoadState(std::istream& in, std::string* error = nullptr);

 private:
  /// Commits the subtree rooted at `root` (id must be in spans_) and
  /// erases its spans; returns true when the store accepted it.
  /// `outcome` is the settle-outcome provenance stamp (kSettled is
  /// downgraded to kOrphanCommit automatically for fragment roots).
  bool CommitTrace(SpanId root,
                   obs::ProvEventType outcome = obs::ProvEventType::kSettled);
  std::size_t SweepSettled();
  void PruneQuality();

  CommitterOptions options_;
  TraceStore* store_;  ///< Not owned.

  std::unordered_map<SpanId, Span> spans_;            ///< Pending spans.
  std::unordered_map<SpanId, SpanId> parent_of_;      ///< Committed edges.
  std::unordered_map<SpanId, std::vector<SpanId>> children_;
  /// Latest per-root quality row seen in a WindowResult (present only
  /// when the weaver ran with compute_quality).
  std::unordered_map<SpanId, obs::TraceQuality> quality_;
  TimeNs last_closed_end_ = 0;
  std::size_t committed_ = 0;
};

}  // namespace traceweaver::store
