#include "store/committer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "trace/checkpoint.h"
#include "trace/jsonl_io.h"

namespace traceweaver::store {

TraceCommitter::TraceCommitter(CommitterOptions options, TraceStore* store)
    : options_(options), store_(store) {}

void TraceCommitter::OnSpan(const Span& span) { spans_[span.id] = span; }

bool TraceCommitter::CommitTrace(SpanId root, obs::ProvEventType outcome) {
  const auto root_it = spans_.find(root);
  if (root_it == spans_.end()) return false;

  TraceRecord record;
  record.trace_id = root;
  record.root_service = root_it->second.callee;
  record.root_endpoint = root_it->second.endpoint;
  record.orphan = !root_it->second.IsRoot();

  if (const auto q = quality_.find(root); q != quality_.end()) {
    record.grade = q->second.grade;
    record.confidence = q->second.confidence;
    record.min_confidence = q->second.min_confidence;
    record.suspect = q->second.suspect_orphan;
  }

  // Root-first walk; children ordered by id so the record is identical
  // regardless of the order assignments arrived in.
  std::vector<SpanId> stack{root};
  while (!stack.empty()) {
    const SpanId id = stack.back();
    stack.pop_back();
    const auto it = spans_.find(id);
    if (it == spans_.end()) continue;  // Child committed or shed earlier.
    record.spans.push_back(it->second);
    if (id != root) {
      record.parents.emplace_back(id, parent_of_.at(id));
    }
    if (const auto kids = children_.find(id); kids != children_.end()) {
      std::vector<SpanId> ordered = kids->second;
      std::sort(ordered.begin(), ordered.end(), std::greater<SpanId>());
      stack.insert(stack.end(), ordered.begin(), ordered.end());
    }
  }
  std::sort(record.parents.begin(), record.parents.end());

  record.start = record.spans.front().client_send;
  record.end = record.spans.front().client_recv;
  for (const Span& s : record.spans) {
    record.start = std::min(record.start, s.client_send);
    record.end = std::max(record.end, s.client_recv);
  }

  for (const Span& s : record.spans) {
    children_.erase(s.id);
    parent_of_.erase(s.id);
    spans_.erase(s.id);
  }
  quality_.erase(root);

  if (options_.sampler != nullptr) {
    const TailSampler::Decision d = options_.sampler->Decide(record);
    if (!d.keep) {
      if (options_.provenance != nullptr) {
        // Free the members' pending ledger events and stamp the shed, so
        // tw_prov_events_total{type="sampled_out"} accounts for the trace
        // even though no stored record carries its provenance.
        for (const Span& s : record.spans) options_.provenance->Take(s.id);
        options_.provenance->Emit(
            obs::ProvEventType::kSampledOut, root,
            static_cast<std::int64_t>(record.spans.size()), d.reason);
      }
      return false;
    }
  }

  if (options_.provenance != nullptr) {
    // Drain each member span's pending events (commit-walk order), then
    // stamp the settle outcome last -- the guarantee that every committed
    // trace explains itself with at least one event.
    for (const Span& s : record.spans) {
      std::vector<obs::ProvEvent> events = options_.provenance->Take(s.id);
      record.provenance.insert(record.provenance.end(),
                               std::make_move_iterator(events.begin()),
                               std::make_move_iterator(events.end()));
    }
    if (outcome == obs::ProvEventType::kSettled && record.orphan) {
      outcome = obs::ProvEventType::kOrphanCommit;
    }
    record.provenance.push_back(options_.provenance->Emit(
        outcome, root, static_cast<std::int64_t>(record.spans.size())));
  }
  return store_->Commit(std::move(record));
}

std::size_t TraceCommitter::SweepSettled() {
  const DurationNs settle =
      options_.window * std::max(options_.settle_windows, 0) +
      options_.margin;
  std::vector<SpanId> due;
  for (const auto& [id, span] : spans_) {
    if (!span.IsRoot()) continue;
    if (span.client_recv + settle <= last_closed_end_) due.push_back(id);
  }
  // Fragment roots: spans whose parent link never materialized and whose
  // trace window is well past (one extra window beyond the rooted-trace
  // horizon, so a slow root commit always wins over a fragment split).
  const DurationNs fragment_settle = settle + options_.window;
  for (const auto& [id, span] : spans_) {
    if (span.IsRoot() || parent_of_.count(id) > 0) continue;
    if (span.client_recv + fragment_settle <= last_closed_end_) {
      due.push_back(id);
    }
  }
  std::sort(due.begin(), due.end());
  std::size_t committed = 0;
  for (SpanId id : due) {
    if (CommitTrace(id)) ++committed;
  }
  return committed;
}

void TraceCommitter::PruneQuality() {
  for (auto it = quality_.begin(); it != quality_.end();) {
    if (spans_.count(it->first) == 0) {
      it = quality_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t TraceCommitter::OnResults(
    const std::vector<WindowResult>& results) {
  std::size_t committed = 0;
  for (const WindowResult& r : results) {
    if (options_.sampler != nullptr && r.shed) {
      options_.sampler->NoteShed(r.window_end);
    }
    for (const auto& [child, parent] : r.assignment) {
      if (parent_of_.emplace(child, parent).second) {
        children_[parent].push_back(child);
      }
    }
    for (const obs::TraceQuality& tq : r.trace_quality) {
      quality_[tq.root] = tq;
    }
    last_closed_end_ = std::max(last_closed_end_, r.window_end);
    // Spans the weaver gave up on are final now: commit what is known of
    // their subtrees as orphan fragments instead of dropping them.
    std::vector<SpanId> lost(r.orphans);
    std::sort(lost.begin(), lost.end());
    for (SpanId id : lost) {
      if (spans_.count(id) > 0 && parent_of_.count(id) == 0 &&
          CommitTrace(id, obs::ProvEventType::kOrphanCommit)) {
        ++committed;
      }
    }
  }
  committed += SweepSettled();
  PruneQuality();
  committed_ += committed;
  return committed;
}

std::size_t TraceCommitter::Finalize() {
  std::size_t committed = 0;
  // Roots first (true roots, then fragment roots), repeated until the
  // pending set drains; ordering by id keeps the output deterministic.
  while (!spans_.empty()) {
    std::vector<SpanId> due;
    for (const auto& [id, span] : spans_) {
      const auto p = parent_of_.find(id);
      if (span.IsRoot() || p == parent_of_.end() ||
          spans_.count(p->second) == 0) {
        due.push_back(id);
      }
    }
    if (due.empty()) break;  // Defensive: an assignment cycle.
    std::sort(due.begin(), due.end());
    for (SpanId id : due) {
      if (spans_.count(id) > 0 &&
          CommitTrace(id, obs::ProvEventType::kFinalized)) {
        ++committed;
      }
    }
  }
  committed_ += committed;
  return committed;
}

void TraceCommitter::SaveState(std::ostream& out) const {
  ChecksummedWriter writer(out, kStateSchema);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":\"%s\",\"spans\":%zu,\"edges\":%zu,"
                "\"quality\":%zu,\"last_closed_end\":%" PRId64
                ",\"committed\":%zu}",
                kStateSchema, spans_.size(), parent_of_.size(),
                quality_.size(), static_cast<std::int64_t>(last_closed_end_),
                committed_);
  writer.WriteLine(buf);

  // Deterministic order (sorted by id) within each positional section:
  // `spans` span lines, then `edges` edge lines, then `quality` rows.
  std::vector<SpanId> ids;
  ids.reserve(spans_.size());
  for (const auto& [id, span] : spans_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (SpanId id : ids) {
    writer.WriteLine(SpanToJson(spans_.at(id), /*include_ground_truth=*/true));
  }

  std::vector<std::pair<SpanId, SpanId>> edges(parent_of_.begin(),
                                               parent_of_.end());
  std::sort(edges.begin(), edges.end());
  for (const auto& [child, parent] : edges) {
    std::snprintf(buf, sizeof(buf),
                  "{\"child\":%" PRIu64 ",\"parent\":%" PRIu64 "}",
                  static_cast<std::uint64_t>(child),
                  static_cast<std::uint64_t>(parent));
    writer.WriteLine(buf);
  }

  ids.clear();
  for (const auto& [root, tq] : quality_) ids.push_back(root);
  std::sort(ids.begin(), ids.end());
  for (SpanId root : ids) {
    const obs::TraceQuality& tq = quality_.at(root);
    std::snprintf(buf, sizeof(buf),
                  "{\"root\":%" PRIu64
                  ",\"tspans\":%zu,\"tparents\":%zu,\"skips\":%zu,"
                  "\"orphan\":%d,\"suspect\":%d,\"confidence\":%.17g,"
                  "\"min_confidence\":%.17g,\"grade\":\"%c\"}",
                  static_cast<std::uint64_t>(root), tq.spans, tq.parents,
                  tq.skips, tq.orphan ? 1 : 0, tq.suspect_orphan ? 1 : 0,
                  tq.confidence, tq.min_confidence, tq.grade);
    writer.WriteLine(buf);
  }
  writer.Finish();
}

bool TraceCommitter::LoadState(std::istream& in, std::string* error) {
  const auto lines = ReadChecksummedLines(in, kStateSchema, error);
  if (!lines || lines->empty()) {
    if (error != nullptr && lines) *error = "empty committer state";
    return false;
  }
  const std::string& header = (*lines)[0];
  const auto n_spans = ckpt::FieldU64(header, "spans");
  const auto n_edges = ckpt::FieldU64(header, "edges");
  const auto n_quality = ckpt::FieldU64(header, "quality");
  const auto last_end = ckpt::FieldI64(header, "last_closed_end");
  const auto committed = ckpt::FieldU64(header, "committed");
  if (!n_spans || !n_edges || !n_quality || !last_end || !committed ||
      1 + *n_spans + *n_edges + *n_quality != lines->size()) {
    if (error != nullptr) *error = "committer state header mismatch";
    return false;
  }

  std::unordered_map<SpanId, Span> spans;
  std::unordered_map<SpanId, SpanId> parent_of;
  std::unordered_map<SpanId, std::vector<SpanId>> children;
  std::unordered_map<SpanId, obs::TraceQuality> quality;
  std::size_t i = 1;
  for (std::uint64_t k = 0; k < *n_spans; ++k, ++i) {
    const auto span = SpanFromJson((*lines)[i]);
    if (!span) {
      if (error != nullptr) *error = "bad span line in committer state";
      return false;
    }
    spans[span->id] = *span;
  }
  for (std::uint64_t k = 0; k < *n_edges; ++k, ++i) {
    const auto child = ckpt::FieldU64((*lines)[i], "child");
    const auto parent = ckpt::FieldU64((*lines)[i], "parent");
    if (!child || !parent) {
      if (error != nullptr) *error = "bad edge line in committer state";
      return false;
    }
    if (parent_of.emplace(*child, *parent).second) {
      children[*parent].push_back(*child);
    }
  }
  for (std::uint64_t k = 0; k < *n_quality; ++k, ++i) {
    const std::string& line = (*lines)[i];
    const auto root = ckpt::FieldU64(line, "root");
    const auto conf = ckpt::FieldF64(line, "confidence");
    const auto min_conf = ckpt::FieldF64(line, "min_confidence");
    const auto grade = ckpt::FieldStr(line, "grade");
    if (!root || !conf || !min_conf || !grade || grade->size() != 1) {
      if (error != nullptr) *error = "bad quality line in committer state";
      return false;
    }
    obs::TraceQuality tq;
    tq.root = *root;
    tq.spans = static_cast<std::size_t>(
        ckpt::FieldU64(line, "tspans").value_or(0));
    tq.parents = static_cast<std::size_t>(
        ckpt::FieldU64(line, "tparents").value_or(0));
    tq.skips =
        static_cast<std::size_t>(ckpt::FieldU64(line, "skips").value_or(0));
    tq.orphan = ckpt::FieldU64(line, "orphan").value_or(0) != 0;
    tq.suspect_orphan = ckpt::FieldU64(line, "suspect").value_or(0) != 0;
    tq.confidence = *conf;
    tq.min_confidence = *min_conf;
    tq.grade = (*grade)[0];
    quality[tq.root] = tq;
  }

  spans_ = std::move(spans);
  parent_of_ = std::move(parent_of);
  children_ = std::move(children);
  quality_ = std::move(quality);
  last_closed_end_ = static_cast<TimeNs>(*last_end);
  committed_ = static_cast<std::size_t>(*committed);
  return true;
}

}  // namespace traceweaver::store
