#include "store/store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "trace/checkpoint.h"

namespace traceweaver::store {
namespace fs = std::filesystem;

TraceStore::TraceStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  snapshot_ = std::make_shared<const Snapshot>();
  RegisterMetrics();
}

TraceStore::~TraceStore() = default;

void TraceStore::RegisterMetrics() {
  obs::MetricsRegistry* reg = options_.metrics;
  if (reg == nullptr) return;
  commits_ = reg->GetCounter("tw_store_commits_total", "",
                             "Traces committed to the store", "1");
  duplicates_ =
      reg->GetCounter("tw_store_duplicate_commits_total", "",
                      "Commits dropped because the trace id was already "
                      "stored (checkpoint replay)",
                      "1");
  seals_ = reg->GetCounter("tw_store_segments_sealed_total", "",
                           "Active segments sealed to disk", "1");
  load_failures_ =
      reg->GetCounter("tw_store_segment_load_failures_total", "",
                      "Segment files rejected or unreadable (CRC, schema, "
                      "truncation, IO)",
                      "1");
  queries_ = reg->GetCounter("tw_store_queries_total", "",
                             "Query calls served", "1");
  query_results_ = reg->GetCounter("tw_store_query_results_total", "",
                                   "Trace summaries emitted by queries", "1");
  cache_hits_ = reg->GetCounter("tw_store_cache_hits_total", "",
                                "Hot-trace cache hits", "1");
  cache_misses_ = reg->GetCounter("tw_store_cache_misses_total", "",
                                  "Hot-trace cache misses", "1");
  cache_evictions_ = reg->GetCounter("tw_store_cache_evictions_total", "",
                                     "Hot-trace cache evictions", "1");
  disk_reads_ = reg->GetCounter("tw_store_segment_reads_total", "",
                                "Sealed segment files read back for a "
                                "record fetch",
                                "1");
  traces_gauge_ = reg->GetGauge("tw_store_traces", "",
                                "Traces in the store (all segments)", "1");
  segments_gauge_ =
      reg->GetGauge("tw_store_segments", "", "Sealed segments", "1");
  active_gauge_ = reg->GetGauge("tw_store_active_traces", "",
                                "Unsealed traces in the active segment", "1");
}

void TraceStore::Publish(std::shared_ptr<const Snapshot> snapshot) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const TraceStore::Snapshot> TraceStore::Load() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::string TraceStore::SegmentPath(std::uint32_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "segment-%06u.jsonl", id);
  return dir_ + "/" + name;
}

std::optional<TraceStore::OpenStats> TraceStore::Open(std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + dir_;
    return std::nullopt;
  }

  std::vector<std::pair<std::uint32_t, std::string>> files;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned id = 0;
    char tail = 0;
    // Only fully-named sealed segments; .tmp files from a crashed seal
    // are ignored (and overwritten by the next seal of that id).
    if (std::sscanf(name.c_str(), "segment-%06u.jsonl%c", &id, &tail) == 1) {
      files.emplace_back(id, entry.path().string());
    }
  }
  if (ec) {
    if (error != nullptr) *error = "cannot scan " + dir_;
    return std::nullopt;
  }
  std::sort(files.begin(), files.end());

  OpenStats stats;
  auto snapshot = std::make_shared<Snapshot>();
  for (const auto& [id, file] : files) {
    next_segment_ = std::max(next_segment_, id + 1);
    std::ifstream in(file, std::ios::binary);
    std::string reason;
    const auto lines =
        in ? ReadChecksummedLines(in, kSegmentSchema, &reason)
           : std::nullopt;
    bool ok = lines.has_value() && !lines->empty();
    auto part = std::make_shared<SegmentPart>();
    if (ok) {
      part->id = id;
      part->file = file;
      for (std::size_t i = 1; i < lines->size() && ok; ++i) {
        auto record = TraceRecordFromJson((*lines)[i]);
        if (!record || known_ids_.count(record->trace_id) > 0) {
          ok = false;
          break;
        }
        TraceSummary s;
        s.trace_id = record->trace_id;
        s.root_service = record->root_service;
        s.root_endpoint = record->root_endpoint;
        s.start = record->start;
        s.end = record->end;
        s.grade = record->grade;
        s.confidence = record->confidence;
        s.orphan = record->orphan;
        s.span_count = record->spans.size();
        s.segment = id;
        s.line = static_cast<std::uint32_t>(i - 1);
        part->by_id.emplace_back(s.trace_id, s.line);
        part->summaries.push_back(std::move(s));
      }
    }
    if (!ok) {
      ++stats.segments_rejected;
      load_failures_.Inc();
      continue;
    }
    for (const TraceSummary& s : part->summaries) {
      known_ids_.insert(s.trace_id);
    }
    std::sort(part->by_id.begin(), part->by_id.end());
    stats.traces_loaded += part->summaries.size();
    ++stats.segments_loaded;
    snapshot->sealed.push_back(std::move(part));
  }
  Publish(std::move(snapshot));
  traces_gauge_.Set(static_cast<std::int64_t>(known_ids_.size()));
  segments_gauge_.Set(static_cast<std::int64_t>(stats.segments_loaded));
  active_gauge_.Set(0);
  return stats;
}

bool TraceStore::Commit(TraceRecord record) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (record.trace_id == kInvalidSpanId ||
      !known_ids_.insert(record.trace_id).second) {
    duplicates_.Inc();
    return false;
  }

  TraceSummary s;
  s.trace_id = record.trace_id;
  s.root_service = record.root_service;
  s.root_endpoint = record.root_endpoint;
  s.start = record.start;
  s.end = record.end;
  s.grade = record.grade;
  s.confidence = record.confidence;
  s.orphan = record.orphan;
  s.span_count = record.spans.size();
  s.segment = TraceSummary::kActiveSegment;

  const auto current = Load();
  auto next = std::make_shared<Snapshot>(*current);
  s.line = static_cast<std::uint32_t>(next->active_summaries.size());
  next->active_summaries.push_back(std::move(s));
  next->active_records.push_back(
      std::make_shared<const TraceRecord>(std::move(record)));
  const std::size_t active = next->active_summaries.size();
  Publish(std::move(next));

  commits_.Inc();
  traces_gauge_.Set(static_cast<std::int64_t>(known_ids_.size()));
  active_gauge_.Set(static_cast<std::int64_t>(active));
  if (options_.segment_traces > 0 && active >= options_.segment_traces) {
    SealLocked(nullptr);
  }
  return true;
}

bool TraceStore::Seal(std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return SealLocked(error);
}

bool TraceStore::SealLocked(std::string* error) {
  const auto current = Load();
  if (current->active_summaries.empty()) return true;

  const std::uint32_t id = next_segment_;
  const std::string path = SegmentPath(id);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + tmp;
      return false;
    }
    ChecksummedWriter writer(out, kSegmentSchema);
    std::string header = "{\"schema\":\"";
    header += kSegmentSchema;
    header += "\",\"segment\":";
    header += std::to_string(id);
    header += ",\"traces\":";
    header += std::to_string(current->active_records.size());
    header += '}';
    writer.WriteLine(header);
    for (const auto& record : current->active_records) {
      writer.WriteLine(TraceRecordToJson(*record));
    }
    writer.Finish();
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "write failed on " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp;
    return false;
  }

  auto part = std::make_shared<SegmentPart>();
  part->id = id;
  part->file = path;
  part->summaries = current->active_summaries;
  for (TraceSummary& s : part->summaries) {
    s.segment = id;  // line index already assigned at commit.
    part->by_id.emplace_back(s.trace_id, s.line);
  }
  std::sort(part->by_id.begin(), part->by_id.end());

  auto next = std::make_shared<Snapshot>();
  next->sealed = current->sealed;
  next->sealed.push_back(part);
  Publish(std::move(next));
  next_segment_ = id + 1;

  // Freshly sealed records stay hot: recent commits are the likeliest
  // fetches and their memory was already paid for.
  for (std::size_t i = 0; i < current->active_records.size(); ++i) {
    CacheInsert(current->active_summaries[i].trace_id,
                current->active_records[i]);
  }
  seals_.Inc();
  segments_gauge_.Set(static_cast<std::int64_t>(next_segment_));
  active_gauge_.Set(0);
  return true;
}

bool TraceStore::Contains(SpanId trace_id) const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return known_ids_.count(trace_id) > 0;
}

std::shared_ptr<const TraceRecord> TraceStore::CacheLookup(
    SpanId id) const {
  if (options_.cache_traces == 0) return nullptr;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_index_.find(id);
  if (it == cache_index_.end()) return nullptr;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return it->second->second;
}

void TraceStore::CacheInsert(
    SpanId id, std::shared_ptr<const TraceRecord> rec) const {
  if (options_.cache_traces == 0 || rec == nullptr) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_index_.find(id);
  if (it != cache_index_.end()) {
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.emplace_front(id, std::move(rec));
  cache_index_[id] = cache_lru_.begin();
  while (cache_lru_.size() > options_.cache_traces) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
    cache_evictions_.Inc();
  }
}

std::shared_ptr<const TraceRecord> TraceStore::FetchSealed(
    const SegmentPart& part, std::uint32_t line) const {
  disk_reads_.Inc();
  std::ifstream in(part.file, std::ios::binary);
  if (!in) {
    load_failures_.Inc();
    return nullptr;
  }
  std::string reason;
  const auto lines = ReadChecksummedLines(in, kSegmentSchema, &reason);
  if (!lines || lines->size() <= line + 1) {
    load_failures_.Inc();
    return nullptr;
  }
  auto record = TraceRecordFromJson((*lines)[line + 1]);
  if (!record) {
    load_failures_.Inc();
    return nullptr;
  }
  return std::make_shared<const TraceRecord>(std::move(*record));
}

std::shared_ptr<const TraceRecord> TraceStore::Get(SpanId trace_id) const {
  const auto snapshot = Load();
  // Active segment: newest records, already in memory.
  for (std::size_t i = snapshot->active_summaries.size(); i-- > 0;) {
    if (snapshot->active_summaries[i].trace_id == trace_id) {
      return snapshot->active_records[i];
    }
  }
  for (std::size_t s = snapshot->sealed.size(); s-- > 0;) {
    const SegmentPart& part = *snapshot->sealed[s];
    const auto it = std::lower_bound(
        part.by_id.begin(), part.by_id.end(),
        std::make_pair(trace_id, std::uint32_t{0}));
    if (it == part.by_id.end() || it->first != trace_id) continue;
    if (auto hit = CacheLookup(trace_id)) {
      cache_hits_.Inc();
      return hit;
    }
    cache_misses_.Inc();
    auto record = FetchSealed(part, it->second);
    CacheInsert(trace_id, record);
    return record;
  }
  return nullptr;
}

namespace {

bool Matches(const TraceSummary& s, const TraceQuery& q) {
  if (!q.service.empty() && s.root_service != q.service) return false;
  if (s.end < q.from || s.start > q.to) return false;
  if (s.grade > q.max_grade) return false;
  if (s.confidence < q.min_confidence) return false;
  return true;
}

}  // namespace

std::vector<TraceSummary> TraceStore::QuerySummaries(
    const TraceQuery& query) const {
  const auto snapshot = Load();
  std::vector<TraceSummary> matches;
  for (const auto& part : snapshot->sealed) {
    for (const TraceSummary& s : part->summaries) {
      if (Matches(s, query)) matches.push_back(s);
    }
  }
  for (const TraceSummary& s : snapshot->active_summaries) {
    if (Matches(s, query)) matches.push_back(s);
  }
  std::sort(matches.begin(), matches.end(),
            [](const TraceSummary& a, const TraceSummary& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.trace_id < b.trace_id;
            });
  if (query.limit > 0 && matches.size() > query.limit) {
    matches.resize(query.limit);
  }
  return matches;
}

std::size_t TraceStore::Query(
    const TraceQuery& query,
    const std::function<bool(const TraceSummary&,
                             const std::shared_ptr<const TraceRecord>&)>&
        emit) const {
  queries_.Inc();
  const auto summaries = QuerySummaries(query);
  std::size_t emitted = 0;
  for (const TraceSummary& s : summaries) {
    ++emitted;
    query_results_.Inc();
    if (!emit(s, Get(s.trace_id))) break;
  }
  return emitted;
}

std::size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return known_ids_.size();
}

std::size_t TraceStore::sealed_segments() const {
  return Load()->sealed.size();
}

std::size_t TraceStore::active_traces() const {
  return Load()->active_summaries.size();
}

}  // namespace traceweaver::store
