// Confidence-driven tail sampling at the store boundary (DESIGN.md §4k).
//
// Production trace volumes make storing every trace untenable; naive
// head sampling throws traces away before knowing whether they matter.
// This sampler decides *after* reconstruction, when the committer is
// about to seal a trace: anomalous traces are always kept, confident
// boring ones are probabilistically shed before they reach the store.
//
// Keep policy, evaluated in order (first match wins; the order is part
// of the contract -- see DESIGN.md §4k):
//
//   1. orphan        -- fragments and suspect orphans carry the evidence
//                       of capture gaps / reconstruction mistakes.
//   2. shed_adjacent -- a trace whose window lies near an overload shed
//                       documents the pressure event; keep everything
//                       within `shed_adjacent_windows` windows of one.
//   3. low_grade     -- grade below `min_boring_grade` or confidence
//                       below `min_boring_confidence`: uncertain
//                       reconstructions must stay auditable.
//   4. high_latency  -- duration >= latency_keep_ns (the tail the
//                       sampler is named for).
//   5. random        -- everything else is confident and boring: keep
//                       with probability keep_rate, decided by hashing
//                       the trace id against the seed (no RNG state, so
//                       a kill -9 replay re-decides identically).
//
// Every decision is a pure function of (record, seed, last shed window);
// the only mutable inputs ride SaveState/LoadState next to the serve
// checkpoint, so a resumed run reproduces the exact store contents.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>

#include "obs/metrics.h"
#include "trace/trace_record.h"

namespace traceweaver::store {

struct TailSamplerOptions {
  /// Keep probability for confident, boring, on-time traces (rule 5).
  double keep_rate = 0.1;
  /// Traces at least this long are always kept (rule 4).
  DurationNs latency_keep_ns = Millis(50);
  /// Grades strictly worse than this are always kept (rule 3).
  char min_boring_grade = 'B';
  /// Confidences strictly below this are always kept (rule 3).
  double min_boring_confidence = 0.5;
  /// Windows on each side of an overload shed whose traces are always
  /// kept (rule 2); `window` must mirror the online weaver's.
  int shed_adjacent_windows = 2;
  DurationNs window = Seconds(2);
  /// Hash seed for the rule-5 coin; fixed so replays agree.
  std::uint64_t seed = 0x7477736d706c72ULL;
};

class TailSampler {
 public:
  /// Schema tag of the saved sampler state (SaveState/LoadState).
  static constexpr const char* kStateSchema = "traceweaver.sampler.v1";

  explicit TailSampler(TailSamplerOptions options,
                       obs::MetricsRegistry* metrics = nullptr);

  /// Marks an overload shed at `window_end`; traces ending within the
  /// shed-adjacency horizon of it are kept unconditionally.
  void NoteShed(TimeNs window_end);

  struct Decision {
    bool keep = true;
    /// Stable verdict name: one of "orphan", "shed_adjacent",
    /// "low_grade", "high_latency", "random" (kept) or "boring" (shed).
    /// Rides the provenance `sampled_out` event detail.
    const char* reason = "random";
  };

  /// Decides (and counts) the fate of a trace about to be committed.
  Decision Decide(const TraceRecord& record);

  std::size_t considered() const { return considered_; }
  std::size_t shed() const { return shed_; }
  std::size_t kept() const { return considered_ - shed_; }
  std::size_t kept_interesting() const { return kept_interesting_; }
  std::size_t kept_random() const { return kept_random_; }

  /// Serializes counters and the shed horizon as CRC-guarded
  /// `traceweaver.sampler.v1` JSONL, written by the serve loop next to
  /// the committer state so a restart resumes bit-identical decisions.
  void SaveState(std::ostream& out) const;
  /// Restores a SaveState snapshot; false (state untouched) on
  /// truncated/corrupt/mismatched input, with a reason in *error.
  bool LoadState(std::istream& in, std::string* error = nullptr);

 private:
  TailSamplerOptions options_;
  TimeNs last_shed_end_ = std::numeric_limits<TimeNs>::min();
  std::size_t considered_ = 0;
  std::size_t shed_ = 0;
  std::size_t kept_interesting_ = 0;  ///< Kept by rules 1-4.
  std::size_t kept_random_ = 0;       ///< Kept by the rule-5 coin.

  obs::Counter m_considered_;
  obs::Counter m_shed_;
  obs::Counter m_shed_spans_;
  obs::Counter m_kept_interesting_;
  obs::Counter m_kept_random_;
};

}  // namespace traceweaver::store
