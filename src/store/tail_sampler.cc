#include "store/tail_sampler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "trace/checkpoint.h"

namespace traceweaver::store {
namespace {

/// splitmix64 finalizer, the same order-independent construction the
/// fault injector uses: one well-mixed word per trace id, no RNG state.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool HashKeep(std::uint64_t id, std::uint64_t seed, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  const double u = static_cast<double>(Mix64(id ^ seed) >> 11) *
                   0x1.0p-53;  // 53 uniform bits in [0, 1).
  return u < rate;
}

}  // namespace

TailSampler::TailSampler(TailSamplerOptions options,
                         obs::MetricsRegistry* metrics)
    : options_(options) {
  if (metrics == nullptr) return;
  m_considered_ = metrics->GetCounter(
      "tw_sample_considered_total", "",
      "Traces evaluated by the tail sampler at commit time", "1");
  m_shed_ = metrics->GetCounter(
      "tw_sample_shed_total", "",
      "Confident boring traces shed before store commit", "1");
  m_shed_spans_ = metrics->GetCounter(
      "tw_sample_shed_spans_total", "",
      "Spans belonging to tail-sampler-shed traces", "1");
  m_kept_interesting_ = metrics->GetCounter(
      "tw_sample_kept_interesting_total", "",
      "Traces kept by an always-keep rule (orphan, shed-adjacent, "
      "low grade, high latency)",
      "1");
  m_kept_random_ = metrics->GetCounter(
      "tw_sample_kept_random_total", "",
      "Boring traces kept by the probabilistic coin", "1");
}

void TailSampler::NoteShed(TimeNs window_end) {
  last_shed_end_ = std::max(last_shed_end_, window_end);
}

TailSampler::Decision TailSampler::Decide(const TraceRecord& record) {
  ++considered_;
  m_considered_.Inc();

  Decision d;
  if (record.orphan || record.suspect) {
    d.reason = "orphan";
  } else if (last_shed_end_ != std::numeric_limits<TimeNs>::min() &&
             record.end + options_.window *
                              std::max(options_.shed_adjacent_windows, 0) >=
                 last_shed_end_) {
    // The trace's window reaches into the shed-adjacency horizon: it
    // documents the pressure event (sheds only move forward in stream
    // time, so one high-water mark suffices).
    d.reason = "shed_adjacent";
  } else if (record.grade > options_.min_boring_grade ||
             record.confidence < options_.min_boring_confidence) {
    d.reason = "low_grade";
  } else if (record.Duration() >= options_.latency_keep_ns) {
    d.reason = "high_latency";
  } else if (HashKeep(static_cast<std::uint64_t>(record.trace_id),
                      options_.seed, options_.keep_rate)) {
    d.reason = "random";
    ++kept_random_;
    m_kept_random_.Inc();
    return d;
  } else {
    d.keep = false;
    d.reason = "boring";
    ++shed_;
    m_shed_.Inc();
    m_shed_spans_.Inc(record.spans.size());
    return d;
  }
  ++kept_interesting_;
  m_kept_interesting_.Inc();
  return d;
}

void TailSampler::SaveState(std::ostream& out) const {
  ChecksummedWriter writer(out, kStateSchema);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":\"%s\",\"considered\":%zu,\"shed\":%zu,"
                "\"kept_interesting\":%zu,\"kept_random\":%zu,"
                "\"last_shed_end\":%" PRId64 "}",
                kStateSchema, considered_, shed_, kept_interesting_,
                kept_random_,
                static_cast<std::int64_t>(
                    last_shed_end_ == std::numeric_limits<TimeNs>::min()
                        ? -1
                        : last_shed_end_));
  writer.WriteLine(buf);
  writer.Finish();
}

bool TailSampler::LoadState(std::istream& in, std::string* error) {
  const auto lines = ReadChecksummedLines(in, kStateSchema, error);
  if (!lines || lines->empty()) {
    if (error != nullptr && lines) *error = "empty sampler state";
    return false;
  }
  const std::string& header = (*lines)[0];
  const auto considered = ckpt::FieldU64(header, "considered");
  const auto shed = ckpt::FieldU64(header, "shed");
  const auto kept_interesting = ckpt::FieldU64(header, "kept_interesting");
  const auto kept_random = ckpt::FieldU64(header, "kept_random");
  const auto last_shed = ckpt::FieldI64(header, "last_shed_end");
  if (!considered || !shed || !kept_interesting || !kept_random ||
      !last_shed) {
    if (error != nullptr) *error = "sampler state header mismatch";
    return false;
  }
  considered_ = static_cast<std::size_t>(*considered);
  shed_ = static_cast<std::size_t>(*shed);
  kept_interesting_ = static_cast<std::size_t>(*kept_interesting);
  kept_random_ = static_cast<std::size_t>(*kept_random);
  last_shed_end_ = *last_shed < 0
                       ? std::numeric_limits<TimeNs>::min()
                       : static_cast<TimeNs>(*last_shed);
  // Counters restored above are process-lifetime tallies; the metric
  // handles re-count from zero after restart, which matches how every
  // other tw_* counter behaves across resumes.
  return true;
}

}  // namespace traceweaver::store
