// The persistent, queryable trace store (DESIGN.md §4h).
//
// Committed traces (TraceRecord, trace/trace_record.h) land in append-only
// *segments*. The active segment accumulates in memory; when it reaches
// `segment_traces` records (or Seal() is called -- the serve loop seals at
// every checkpoint and at shutdown) it is written to
// `<dir>/segment-NNNNNN.jsonl` with the same discipline as checkpoints:
// CRC-32-guarded payload (trace/checkpoint.h, schema
// `traceweaver.store.segment.v1`) written to a temporary file and
// rename()d into place, so a crash mid-seal leaves no half segment and a
// reopened store only ever sees whole ones.
//
// Durability contract: sealed segments are durable; active (unsealed)
// records are not. Recovery without loss or duplication comes from pairing
// seals with the serve loop's checkpoints -- the store seals *before* the
// checkpoint records the source offset, so on resume every trace the
// checkpoint considers consumed is on disk, replay from the offset
// regenerates whatever was in flight, and Commit() is idempotent by trace
// id so re-committed traces are dropped silently.
//
// Concurrency: one writer (the ingest loop), any number of readers (HTTP
// workers, the query CLI). Readers never take the writer's lock: every
// mutation builds the next immutable index snapshot off-lock and swaps it
// in under a dedicated pointer mutex held only for a shared_ptr copy
// (snapshot-on-commit; sealed segments share their per-segment summary
// vectors across snapshots, so the per-commit copy is bounded by the
// active segment). Record bodies for sealed segments are fetched from
// disk through a bounded LRU hot-trace cache with its own small mutex --
// neither lock is ever held across IO or a query walk.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "trace/trace_record.h"

namespace traceweaver::store {

struct StoreOptions {
  /// Records per segment; the active segment auto-seals at this size.
  std::size_t segment_traces = 256;
  /// Hot-trace LRU capacity (records cached in memory after a disk
  /// fetch). 0 disables caching.
  std::size_t cache_traces = 128;
  /// Metric sink for the tw_store_* family (docs/METRICS.md). Null
  /// disables recording. Not owned.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The index entry for one committed trace: everything queries filter on,
/// plus where the record body lives.
struct TraceSummary {
  SpanId trace_id = kInvalidSpanId;
  std::string root_service;
  std::string root_endpoint;
  TimeNs start = 0;
  TimeNs end = 0;
  char grade = 'D';
  double confidence = 0.0;
  bool orphan = false;
  std::size_t span_count = 0;
  /// Sealed segment id, or kActiveSegment while the record is unsealed.
  std::uint32_t segment = 0;
  /// Payload line index within the segment (0 = first record line).
  std::uint32_t line = 0;

  static constexpr std::uint32_t kActiveSegment =
      std::numeric_limits<std::uint32_t>::max();
};

/// Query filter; default-constructed matches everything.
struct TraceQuery {
  /// Exact root-service match; empty matches any.
  std::string service;
  /// Time-range overlap: a trace matches when [start, end] intersects
  /// [from, to].
  TimeNs from = std::numeric_limits<TimeNs>::min();
  TimeNs to = std::numeric_limits<TimeNs>::max();
  /// Worst acceptable grade: 'A' keeps only A traces, 'D' (default) all.
  char max_grade = 'D';
  double min_confidence = 0.0;
  /// Maximum results; 0 means unlimited.
  std::size_t limit = 0;
};

class TraceStore {
 public:
  static constexpr const char* kSegmentSchema =
      "traceweaver.store.segment.v1";

  explicit TraceStore(std::string dir, StoreOptions options = {});
  ~TraceStore();
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  struct OpenStats {
    std::size_t segments_loaded = 0;
    std::size_t traces_loaded = 0;
    /// Truncated / corrupted / wrong-schema segment files skipped (each
    /// also counted in tw_store_segment_load_failures_total).
    std::size_t segments_rejected = 0;
  };

  /// Scans `dir` for sealed segments, verifies each CRC footer and
  /// rebuilds the index. Rejected segments are skipped, never deleted.
  /// Returns nullopt only when the directory itself is unusable.
  std::optional<OpenStats> Open(std::string* error = nullptr);

  /// Commits one trace. Idempotent by trace id: a duplicate is dropped
  /// (returns false) so checkpoint-replay after a crash cannot double-
  /// commit. May seal the active segment when it reaches segment_traces.
  bool Commit(TraceRecord record);

  /// Seals the active segment to disk (tmp + rename). No-op when the
  /// active segment is empty. Returns false with *error on IO failure
  /// (records stay active and a later Seal retries).
  bool Seal(std::string* error = nullptr);

  bool Contains(SpanId trace_id) const;

  /// Fetches one record: active segment and LRU hits are memory reads,
  /// misses load (and CRC-verify) the owning segment file. Null when the
  /// id is unknown or the segment file has gone unreadable.
  std::shared_ptr<const TraceRecord> Get(SpanId trace_id) const;

  /// Streams every match in (start, trace_id) order through `emit` until
  /// the limit is reached or `emit` returns false. The record pointer is
  /// null only when a sealed segment could not be re-read. Returns the
  /// number of matches emitted.
  std::size_t Query(
      const TraceQuery& query,
      const std::function<bool(const TraceSummary&,
                               const std::shared_ptr<const TraceRecord>&)>&
          emit) const;

  /// Matching summaries only (no record fetch), same order as Query.
  std::vector<TraceSummary> QuerySummaries(const TraceQuery& query) const;

  std::size_t size() const;            ///< Committed traces (all segments).
  std::size_t sealed_segments() const;
  std::size_t active_traces() const;   ///< Unsealed (memory-only) records.
  const std::string& dir() const { return dir_; }

 private:
  /// Immutable per-sealed-segment index slice, shared across snapshots.
  struct SegmentPart {
    std::uint32_t id = 0;
    std::string file;  ///< Full path.
    std::vector<TraceSummary> summaries;              ///< Commit order.
    std::vector<std::pair<SpanId, std::uint32_t>> by_id;  ///< Sorted.
  };

  /// The published immutable reader view.
  struct Snapshot {
    std::vector<std::shared_ptr<const SegmentPart>> sealed;
    std::vector<TraceSummary> active_summaries;  ///< Commit order.
    std::vector<std::shared_ptr<const TraceRecord>> active_records;
  };

  bool SealLocked(std::string* error);
  void Publish(std::shared_ptr<const Snapshot> snapshot);
  std::shared_ptr<const Snapshot> Load() const;
  std::shared_ptr<const TraceRecord> FetchSealed(
      const SegmentPart& part, std::uint32_t line) const;
  std::shared_ptr<const TraceRecord> CacheLookup(SpanId id) const;
  void CacheInsert(SpanId id, std::shared_ptr<const TraceRecord> rec) const;
  std::string SegmentPath(std::uint32_t id) const;
  void RegisterMetrics();

  const std::string dir_;
  const StoreOptions options_;

  /// Writer state (Commit/Seal/Open), guarded by writer_mutex_.
  mutable std::mutex writer_mutex_;
  std::unordered_set<SpanId> known_ids_;
  std::uint32_t next_segment_ = 0;

  /// Published under its own tiny mutex (held only for a shared_ptr
  /// copy; libstdc++'s atomic<shared_ptr> trips TSan on its internal
  /// lock-bit protocol, and the mutex is just as cheap here).
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;

  /// Hot-trace LRU (read path). Front of the list is most recent.
  mutable std::mutex cache_mutex_;
  mutable std::list<std::pair<SpanId, std::shared_ptr<const TraceRecord>>>
      cache_lru_;
  mutable std::unordered_map<SpanId, decltype(cache_lru_)::iterator>
      cache_index_;

  // tw_store_* metric handles (inert when options_.metrics is null).
  obs::Counter commits_;
  obs::Counter duplicates_;
  obs::Counter seals_;
  obs::Counter load_failures_;
  obs::Counter queries_;
  obs::Counter query_results_;
  obs::Counter cache_hits_;
  obs::Counter cache_misses_;
  obs::Counter cache_evictions_;
  obs::Counter disk_reads_;
  obs::Gauge traces_gauge_;
  obs::Gauge segments_gauge_;
  obs::Gauge active_gauge_;
};

}  // namespace traceweaver::store
